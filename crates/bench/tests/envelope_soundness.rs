//! Property-based soundness of the fault-envelope abstract
//! interpretation (DESIGN.md §15): for randomly drawn deployments and
//! fault families, every *concrete* completion instant the dynamic
//! stack produces — the `ecl-exec` virtual machine under family-member
//! fault plans, and the co-simulated fleet sweep — must land inside the
//! static `[lo, hi]` envelope. Pruned sweeps must additionally stay
//! byte-identical across worker counts.

use ecl_aaa::{adequation, codegen, AdequationOptions, TimeNs};
use ecl_bench::fleet::{run_sweep, FaultAxes, Scenario, SweepConfig};
use ecl_bench::{dc_motor_loop, split_scenario};
use ecl_core::faults::{FaultConfig, FaultFamily, FaultPlan};
use ecl_exec::ExecOptions;
use proptest::prelude::*;

const PERIODS: u32 = 10;

fn us(v: i64) -> TimeNs {
    TimeNs::from_micros(v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// The virtual machine, executing under any plan the family can
    /// draw, never produces a completion instant outside the envelope:
    /// for every measured op, `lo <= offset <= hi`, nominally and under
    /// several drawn plans.
    #[test]
    fn vm_completions_stay_inside_the_envelope(
        n_inputs in 1usize..4,
        n_outputs in 1usize..3,
        bus_us in 50i64..400,
        io_us in 20i64..120,
        compute_us in 100i64..900,
        frame in 0.0f64..0.5,
        outage in 0.0f64..0.3,
        dropout in 0.0f64..0.15,
        retries in 0u32..4,
        plan_seed in 0u64..(1u64 << 32),
    ) {
        let base = split_scenario(n_inputs, n_outputs, us(bus_us), us(io_us), us(compute_us))
            .expect("scenario");
        let schedule = adequation(&base.alg, &base.arch, &base.db, AdequationOptions::default())
            .expect("adequation");
        let period = TimeNs::from_nanos(schedule.makespan().as_nanos() * 5 / 4 + 1);
        let config = FaultConfig {
            seed: plan_seed,
            frame_loss_rate: frame,
            link_outage_rate: outage,
            proc_dropout_rate: dropout,
            max_retries: retries,
            ..FaultConfig::default()
        };
        let family = FaultFamily::from_config(&config);
        let envelope = ecl_verify::fault_envelope(
            &base.alg, &base.arch, &schedule, period, &family, None,
        );
        let generated = codegen::generate(&schedule, &base.alg, &base.arch).expect("generate");

        // The trivial plan is a member of every family (every rate < 1
        // can draw a fault-free seed), and several concrete draws are.
        let mut plans = vec![None];
        for s in 0..4u64 {
            let drawn = FaultPlan::generate(
                &FaultConfig { seed: plan_seed.wrapping_add(s), ..config },
                &schedule,
                &base.arch,
                PERIODS,
            )
            .expect("plan");
            prop_assert!(family.contains_config(&config));
            plans.push(Some(drawn));
        }
        for plan in &plans {
            let opts = ExecOptions {
                period,
                periods: PERIODS,
                faults: plan.as_ref(),
            };
            let measured = ecl_exec::run(&generated, &base.arch, &schedule, &opts)
                .expect("vm run");
            prop_assert!(!measured.ops.is_empty());
            for r in &measured.ops {
                let Some(e) = envelope.envelope_for(r.op) else { continue };
                let offset = r.end.as_nanos() - period.as_nanos() * i64::from(r.period);
                prop_assert!(
                    e.completion.lo().as_nanos() <= offset
                        && offset <= e.completion.hi().as_nanos(),
                    "op{} period {} completed at offset {offset} ns, outside envelope {} \
                     (family {:?}, plan {:?})",
                    r.op.index(),
                    r.period,
                    e.completion,
                    family,
                    plan.is_some(),
                );
            }
        }
    }

    /// Co-simulated fleet sweeps: every scenario's measured worst
    /// actuation stays at or below the envelope's actuation upper bound
    /// for that scenario's family — and the pruned sweep is
    /// byte-identical on 1 and 4 workers, with pruned rows agreeing
    /// with the ground truth the full pipeline computes.
    #[test]
    fn cosim_worst_actuation_stays_inside_the_envelope(
        base_seed in 0u64..(1u64 << 48),
        bus_us in 100i64..400,
        frame in 0.0f64..0.4,
        dropout in 0.0f64..0.1,
    ) {
        let base = split_scenario(2, 1, us(bus_us), us(50), us(500)).expect("scenario");
        let spec = dc_motor_loop(0.25).expect("spec");
        let config = |workers: usize, prune: bool| SweepConfig {
            base_seed,
            scenario_count: 8,
            workers,
            // Zero entries on each axis so some scenarios draw trivial
            // families and actually prune Safe.
            faults: FaultAxes {
                frame_loss_rates: vec![0.0, frame],
                proc_dropout_rates: vec![0.0, dropout],
                ..FaultAxes::default()
            },
            prune_static: prune,
            ..SweepConfig::default()
        };

        // Ground truth: the unpruned sweep simulates everything.
        let full = run_sweep(&spec, &base, &config(1, false)).expect("sweep");
        let unpruned_config = config(1, false);
        for row in &full.summary.scenarios {
            let scenario = Scenario::derive(&unpruned_config, &base, row.index);
            let db = scenario.jittered_db(&base);
            let schedule = adequation(
                &base.alg,
                &base.arch,
                &db,
                AdequationOptions { policy: scenario.policy },
            )
            .expect("adequation");
            let mut ts = spec.ts * scenario.period_scale;
            let makespan_s = schedule.makespan().as_secs_f64();
            if makespan_s > ts {
                ts = makespan_s * 1.05;
            }
            let family =
                FaultFamily::from_config(&scenario.fault_config(&unpruned_config.faults));
            let envelope = ecl_verify::fault_envelope(
                &base.alg,
                &base.arch,
                &schedule,
                TimeNs::from_secs_f64(ts),
                &family,
                None,
            );
            prop_assert!(
                row.worst_actuation_ns <= envelope.max_actuation_hi().as_nanos(),
                "scenario {} measured worst actuation {} ns above the envelope bound {} \
                 (family {:?})",
                row.index,
                row.worst_actuation_ns,
                envelope.max_actuation_hi(),
                family,
            );
        }

        // Pruned sweeps: worker-count invariant to the byte.
        let p1 = run_sweep(&spec, &base, &config(1, true)).expect("pruned 1w");
        let p4 = run_sweep(&spec, &base, &config(4, true)).expect("pruned 4w");
        prop_assert_eq!(&p1.summary, &p4.summary);
        prop_assert_eq!(p1.summary.render(), p4.summary.render());
        prop_assert_eq!(p1.summary.to_json(), p4.summary.to_json());
        let prune = p1.summary.prune.expect("prune summary requested");
        prop_assert_eq!(prune.evaluated, 8);
        prop_assert_eq!(
            prune.pruned_safe + prune.pruned_unsafe + prune.simulated,
            prune.evaluated
        );
        // A pruned-safe row's ground truth must be overrun-free.
        for (pruned, gt) in p1.summary.scenarios.iter().zip(&full.summary.scenarios) {
            if pruned.label.ends_with(" pruned:safe") {
                prop_assert_eq!(gt.overruns, 0, "safe-pruned scenario {} overran", gt.index);
            }
        }
    }
}
