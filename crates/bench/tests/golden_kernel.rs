//! Golden byte-identity tests for the sim-kernel hot path.
//!
//! The allocation-free kernel refactor (scratch buffers, indexed route
//! iteration, integer-grid probe instants, borrowed `run` results) must
//! not change a single artifact byte. These tests pin the exp10-style
//! lifecycle case and the exp12-style fault sweep against golden files
//! blessed with the *seed* kernel; any behavioural drift in the engine
//! shows up as a byte diff here.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! ECL_GOLDEN_BLESS=1 cargo test -p ecl-bench --test golden_kernel
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use ecl_aaa::{AdequationOptions, ArchitectureGraph, TimeNs};
use ecl_bench::fleet::{run_sweep, FaultAxes, SweepConfig};
use ecl_bench::{dc_motor_loop, split_scenario};
use ecl_control::plants;
use ecl_core::cosim::{DisturbanceKind, LoopResult};
use ecl_core::lifecycle::{self, LifecycleInputs};
use ecl_core::translate::{uniform_timing, ControlLawSpec};
use ecl_linalg::Mat;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the golden file, or rewrites the golden
/// when `ECL_GOLDEN_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("ECL_GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless with ECL_GOLDEN_BLESS=1",
            path.display()
        )
    });
    if actual != expected {
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or(expected.lines().count().min(actual.lines().count()), |i| i);
        panic!(
            "{name} diverged from the golden at line {} (expected {} bytes, got {}):\n  \
             golden: {:?}\n  actual: {:?}",
            line + 1,
            expected.len(),
            actual.len(),
            expected.lines().nth(line).unwrap_or("<eof>"),
            actual.lines().nth(line).unwrap_or("<eof>"),
        );
    }
}

/// Event-path engine counters: the hot-loop refactor must leave every
/// one unchanged (ODE step counts are pinned by the traces themselves).
fn stats_lines(tag: &str, r: &LoopResult) -> String {
    format!(
        "{tag}: events_delivered={} event_instants={} max_cascade={} calendar_peak={} \
         activations={:?}\n",
        r.stats.events_delivered,
        r.stats.event_instants,
        r.stats.max_cascade,
        r.stats.calendar_peak,
        r.stats.activation_counts(),
    )
}

fn trace_lines(tag: &str, r: &LoopResult) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== {tag} trace: {} events, end {} ==",
        r.result.event_log().len(),
        r.result.end_time()
    );
    for (name, sig) in r.result.signals() {
        s.push_str(&sig.to_csv(name));
    }
    s
}

/// The exp10 case study at a shorter horizon: quarter-car active
/// suspension over a 3-ECU CAN network, full lifecycle (ideal +
/// implemented + calibrated co-simulations).
#[test]
fn lifecycle_quarter_car_bytes_match_seed_kernel() {
    let plant = plants::quarter_car();
    let law = ControlLawSpec::filtered("susp", 4, 1).with_data_units(8);
    let (_, io) = law.to_algorithm().expect("law translates");

    let mut arch = ArchitectureGraph::new();
    let wheel_ecu = arch.add_processor("wheel_ecu", "cortex-m");
    let body_ecu = arch.add_processor("body_ecu", "cortex-m");
    let control_ecu = arch.add_processor("control_ecu", "cortex-a");
    arch.add_bus(
        "can",
        &[wheel_ecu, body_ecu, control_ecu],
        TimeNs::from_micros(120),
        TimeNs::from_micros(8),
    )
    .expect("bus");

    let (alg, _) = law.to_algorithm().expect("law translates");
    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(80), TimeNs::from_micros(600));
    for &s in &[io.sensors[0], io.sensors[2], io.sensors[3]] {
        db.forbid(s, body_ecu);
        db.forbid(s, control_ecu);
    }
    db.forbid(io.sensors[1], wheel_ecu);
    db.forbid(io.sensors[1], control_ecu);
    let step = *io.stages.last().expect("law has stages");
    db.forbid(step, wheel_ecu);
    db.forbid(step, body_ecu);
    db.forbid(io.actuators[0], body_ecu);
    db.forbid(io.actuators[0], control_ecu);

    let inputs = LifecycleInputs {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0: vec![0.05, 0.0, 0.0, 0.0],
        ts: plant.ts,
        horizon: 0.25,
        lqr_q: Mat::diag(&[1e4, 1.0, 1e3, 1.0]),
        lqr_r: Mat::diag(&[1e-6]),
        q_weight: 1.0,
        r_weight: 1e-8,
        law,
        arch,
        db,
        adequation: AdequationOptions::default(),
        disturbance: DisturbanceKind::None,
    };

    let rep = lifecycle::run(&inputs).expect("lifecycle runs");

    let mut out = String::new();
    let _ = writeln!(out, "== costs ==");
    let _ = writeln!(out, "ideal       {:.9}", rep.ideal.cost);
    let _ = writeln!(out, "implemented {:.9}", rep.implemented.cost);
    let _ = writeln!(out, "calibrated  {:.9}", rep.calibrated.cost);
    let _ = writeln!(out, "degradation {:+.3}%", rep.degradation() * 100.0);
    let _ = writeln!(out, "== latency (paper eq. 1-2) ==");
    out.push_str(&rep.latency.render());
    let _ = writeln!(out, "== engine stats (event path) ==");
    out.push_str(&stats_lines("ideal", &rep.ideal));
    out.push_str(&stats_lines("implemented", &rep.implemented));
    out.push_str(&stats_lines("calibrated", &rep.calibrated));
    out.push_str(&trace_lines("ideal", &rep.ideal));
    out.push_str(&trace_lines("implemented", &rep.implemented));
    out.push_str(&trace_lines("calibrated", &rep.calibrated));

    check_golden("lifecycle_quarter_car.txt", &out);
}

/// The exp12 case: deterministic fault-injection sweep over the fleet
/// (frame loss + retransmission, link outages, processor dropout), on
/// two workers — report and JSON bytes pinned against the seed kernel.
#[test]
fn fault_sweep_bytes_match_seed_kernel() {
    let base = split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )
    .expect("scenario");
    let spec = dc_motor_loop(0.2).expect("loop spec");
    let config = SweepConfig {
        scenario_count: 12,
        workers: 2,
        trace_scenarios: 2,
        faults: FaultAxes {
            frame_loss_rates: vec![0.0, 0.10, 0.30],
            link_outage_rates: vec![0.0, 0.15],
            proc_dropout_rates: vec![0.0, 0.01],
            ..FaultAxes::default()
        },
        ..SweepConfig::default()
    };
    let out = run_sweep(&spec, &base, &config).expect("sweep runs");

    let mut s = out.summary.render();
    s.push_str("== json ==\n");
    s.push_str(&out.summary.to_json());
    let _ = writeln!(s, "== actuation histogram ==");
    let _ = writeln!(s, "{:?}", out.actuation_hist);

    check_golden("fleet_fault_sweep.txt", &s);
}
