//! Property-based soundness tests of the static verifier: for randomly
//! drawn algorithm/architecture instances, the static `Ls`/`La` bounds of
//! `ecl-verify` must dominate every latency the dynamic stack measures —
//! both the co-simulated run (`run_scheduled`, via the fleet's
//! `verify_static` margin) and the `ecl-exec` virtual machine, nominally
//! and under retries-only fault plans, independent of worker count.

use ecl_aaa::{adequation, codegen, AdequationOptions, ArchitectureGraph, Schedule, TimeNs};
use ecl_bench::fleet::{run_sweep, SweepConfig};
use ecl_bench::{dc_motor_loop, split_scenario};
use ecl_core::faults::{CommFault, FaultConfig, FaultPlan};
use ecl_exec::ExecOptions;
use ecl_verify::LatencyBoundReport;
use proptest::prelude::*;

const PERIODS: u32 = 12;

fn us(v: i64) -> TimeNs {
    TimeNs::from_micros(v)
}

/// Scans a few plan seeds for a retries-only plan (retransmissions but no
/// drop and no dead processor); `None` when the window has none.
fn retries_only_plan(
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    seed0: u64,
) -> Option<FaultPlan> {
    let n_procs = arch.processors().count();
    (seed0..seed0 + 256).find_map(|seed| {
        let config = FaultConfig {
            seed,
            frame_loss_rate: 0.1,
            max_retries: 3,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&config, schedule, arch, PERIODS).ok()?;
        let dead = (0..n_procs).any(|p| plan.proc_dead_from(p).is_some());
        let mut retries = 0u32;
        let mut dropped = false;
        for i in 0..schedule.comms().len() {
            for k in 0..PERIODS {
                match plan.comm_fault(i, k) {
                    CommFault::Ok => {}
                    CommFault::Retry(r) => retries += r,
                    CommFault::Drop => dropped = true,
                }
            }
        }
        (!dead && !dropped && retries > 0).then_some(plan)
    })
}

/// Smallest `static bound − measured completion offset` over every I/O
/// completion of a virtual-machine run, ns.
fn vm_margin(
    alg: &ecl_aaa::AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    period: TimeNs,
    faults: Option<&FaultPlan>,
    bounds: &LatencyBoundReport,
) -> i64 {
    let generated = codegen::generate(schedule, alg, arch).expect("generate");
    let opts = ExecOptions {
        period,
        periods: PERIODS,
        faults,
    };
    let measured = ecl_exec::run(&generated, arch, schedule, &opts).expect("vm run");
    let mut margin = i64::MAX;
    for r in &measured.ops {
        if let Some(b) = bounds.bound_for(r.op) {
            let offset = r.end.as_nanos() - period.as_nanos() * i64::from(r.period);
            margin = margin.min(b.faulty.as_nanos() - offset);
        }
    }
    assert!(margin < i64::MAX, "the VM measured no I/O completion");
    margin
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Random split deployments: the verifier reports zero errors and the
    /// virtual machine never beats the static bounds, nominally and under
    /// a retries-only plan (when the seed window yields one).
    #[test]
    fn vm_never_exceeds_static_bounds(
        n_inputs in 1usize..4,
        n_outputs in 1usize..3,
        bus_us in 50i64..400,
        io_us in 20i64..120,
        compute_us in 100i64..900,
        plan_seed in 0u64..(1u64 << 32),
    ) {
        let base = split_scenario(n_inputs, n_outputs, us(bus_us), us(io_us), us(compute_us))
            .expect("scenario");
        let schedule = adequation(&base.alg, &base.arch, &base.db, AdequationOptions::default())
            .expect("adequation");
        // A period comfortably above the makespan, derived (not drawn) so
        // the delay-graph lint's EV304 never fires.
        let period = TimeNs::from_nanos(schedule.makespan().as_nanos() * 5 / 4 + 1);

        let nominal =
            ecl_verify::verify(&base.alg, &base.arch, &base.db, &schedule, period, None)
                .expect("verify");
        prop_assert!(nominal.is_clean(), "{}", nominal.render());
        let bounds = nominal.bounds.as_ref().expect("bounds");
        let margin = vm_margin(&base.alg, &base.arch, &schedule, period, None, bounds);
        prop_assert!(margin >= 0, "nominal VM beat the bound by {} ns", -margin);

        if let Some(plan) = retries_only_plan(&schedule, &base.arch, plan_seed) {
            let faulty = ecl_verify::verify(
                &base.alg, &base.arch, &base.db, &schedule, period, Some(&plan),
            )
            .expect("verify");
            prop_assert!(faulty.is_clean(), "{}", faulty.render());
            let fbounds = faulty.bounds.as_ref().expect("bounds");
            prop_assert!(!fbounds.drop_capable);
            prop_assert!(fbounds.retry_stretch > TimeNs::ZERO);
            let margin =
                vm_margin(&base.alg, &base.arch, &schedule, period, Some(&plan), fbounds);
            prop_assert!(margin >= 0, "faulty VM beat the bound by {} ns", -margin);
        }
    }

    /// Random fleet sweeps with `verify_static`: zero verifier errors, a
    /// non-negative soundness margin against the co-simulated
    /// (`run_scheduled`) latencies, and byte-identical summaries on 1 and
    /// 4 workers.
    #[test]
    fn sweep_margins_are_sound_and_worker_invariant(
        base_seed in 0u64..(1u64 << 48),
        bus_us in 100i64..400,
    ) {
        let base = split_scenario(2, 1, us(bus_us), us(50), us(500)).expect("scenario");
        let spec = dc_motor_loop(0.25).expect("spec");
        let config = |workers| SweepConfig {
            base_seed,
            scenario_count: 4,
            workers,
            verify_static: true,
            ..SweepConfig::default()
        };
        let serial = run_sweep(&spec, &base, &config(1)).expect("sweep");
        let parallel = run_sweep(&spec, &base, &config(4)).expect("sweep");
        prop_assert_eq!(&serial.summary, &parallel.summary);
        prop_assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        let v = serial.summary.verification.expect("verification requested");
        prop_assert_eq!(v.verified, 4);
        prop_assert_eq!(v.errors, 0, "verifier flagged a sweep schedule");
        prop_assert!(
            v.worst_margin_ns >= 0,
            "a measured latency exceeded its static bound by {} ns",
            -v.worst_margin_ns
        );
    }
}
