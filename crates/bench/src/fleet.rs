//! `ecl-fleet` — a deterministic multi-threaded scenario-sweep engine.
//!
//! A single lifecycle run answers "how does *this* implementation
//! behave?"; a robustness study needs the same answer over hundreds of
//! perturbed implementations (WCET jitter, mapping policy, sampling
//! period). This module runs such a Monte-Carlo sweep over the full
//! adequation → graph-of-delays → co-simulation pipeline on a
//! self-scheduling pool of `std::thread` workers, with two guarantees:
//!
//! * **Determinism** — the sweep report is byte-identical regardless of
//!   worker count. Every scenario derives its PRNG seed from the sweep
//!   seed and its own index ([`scenario_seed`], a splitmix64 stream), and
//!   the aggregator folds per-scenario results in index order, never in
//!   completion order.
//! * **No redundant scheduling** — an [`ScheduleCache`] shared by all
//!   workers memoizes adequation results by content digest, so scenarios
//!   that perturb only the period (or repeat a WCET table) skip the
//!   scheduler.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ecl_aaa::{AdequationOptions, MappingPolicy, ScheduleCache, TimeNs, TimingDb};
use ecl_core::cosim::{self, LoopSpec};
use ecl_core::report::{ScenarioOutcome, SweepSummary};
use ecl_core::CoreError;
use ecl_telemetry::{Collector, Histogram, PrefixSink, RecordingSink};

use crate::SplitScenario;

/// Buckets of the sweep-level actuation-latency histogram.
const SWEEP_BUCKETS: usize = 64;

/// The splitmix64 finalizer: a bijective avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives scenario `index`'s PRNG seed from the sweep seed: element
/// `index` of the splitmix64 stream starting at `base`. Workers never
/// share PRNG state, so the derivation — not scheduling order — fixes
/// every random draw.
pub fn scenario_seed(base: u64, index: usize) -> u64 {
    splitmix64(base.wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Per-scenario PRNG over the splitmix64 stream of [`scenario_seed`].
#[derive(Debug, Clone)]
struct FleetRng {
    state: u64,
}

impl FleetRng {
    fn new(seed: u64) -> Self {
        FleetRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state.wrapping_sub(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform in `[0, 1)` (53-bit resolution).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)` by rejection sampling (no modulo bias).
    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next_u64();
            if x < zone {
                return (x % n) as usize;
            }
        }
    }
}

/// What a sweep varies and how large it is.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Sweep-level seed; scenario `i` uses [`scenario_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Number of scenarios.
    pub scenario_count: usize,
    /// Worker threads (clamped to at least 1). Must not affect results.
    pub workers: usize,
    /// Maximum fractional WCET inflation: each operation's WCET is scaled
    /// by a factor drawn uniformly from `[1, 1 + wcet_jitter]`.
    pub wcet_jitter: f64,
    /// Sampling-period scales; each scenario draws one uniformly.
    pub period_scales: Vec<f64>,
    /// Mapping policies, assigned round-robin by scenario index. A
    /// [`MappingPolicy::Random`] entry is re-seeded with the scenario
    /// seed.
    pub policies: Vec<MappingPolicy>,
    /// A scenario is robust when `cost / ideal cost <= cost_bound_ratio`.
    pub cost_bound_ratio: f64,
    /// Capture merged telemetry traces for the first `trace_scenarios`
    /// scenarios (they get `s<i>:`-prefixed tracks in the merged stream).
    pub trace_scenarios: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            base_seed: 0xec1_f1ee7,
            scenario_count: 64,
            workers: 1,
            wcet_jitter: 0.30,
            period_scales: vec![1.0, 1.25, 1.5],
            policies: vec![
                MappingPolicy::SchedulePressure,
                MappingPolicy::EarliestFinish,
            ],
            cost_bound_ratio: 1.5,
            trace_scenarios: 0,
        }
    }
}

/// A concrete perturbation of the baseline, fully determined by
/// `(config, index)` — deriving it never consults shared state.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index within the sweep.
    pub index: usize,
    /// The derived PRNG seed.
    pub seed: u64,
    /// Per-operation WCET scale factors, in [`ecl_aaa::OpId`] index order.
    pub wcet_factors: Vec<f64>,
    /// Sampling-period scale.
    pub period_scale: f64,
    /// Mapping policy for this scenario's adequation.
    pub policy: MappingPolicy,
}

impl Scenario {
    /// Derives scenario `index` of a sweep over `base`.
    pub fn derive(config: &SweepConfig, base: &SplitScenario, index: usize) -> Scenario {
        let seed = scenario_seed(config.base_seed, index);
        let mut rng = FleetRng::new(seed);
        // Ops are visited in index order so draws are reproducible; the
        // timing table itself iterates in unspecified (HashMap) order.
        let wcet_factors: Vec<f64> = base
            .alg
            .ops()
            .map(|_| 1.0 + config.wcet_jitter * rng.next_f64())
            .collect();
        let period_scale = config.period_scales[rng.below(config.period_scales.len())];
        let mut policy = config.policies[index % config.policies.len()];
        if let MappingPolicy::Random { .. } = policy {
            policy = MappingPolicy::Random { seed };
        }
        Scenario {
            index,
            seed,
            wcet_factors,
            period_scale,
            policy,
        }
    }

    /// The perturbed WCET table: every default and processor-specific
    /// entry scaled by its operation's factor (interdictions kept).
    pub fn jittered_db(&self, base: &SplitScenario) -> TimingDb {
        let scale = |t: TimeNs, f: f64| {
            TimeNs::from_nanos(((t.as_nanos() as f64 * f).round() as i64).max(1))
        };
        let mut db = base.db.clone();
        let mut defaults: Vec<_> = base.db.iter_defaults().collect();
        defaults.sort_by_key(|&(op, _)| op);
        for (op, t) in defaults {
            db.set_default(op, scale(t, self.wcet_factors[op.index()]));
        }
        let mut specific: Vec<_> = base.db.iter_specific().collect();
        specific.sort_by_key(|&(op, p, _)| (op, p));
        for (op, p, t) in specific {
            db.set(op, p, scale(t, self.wcet_factors[op.index()]));
        }
        db
    }

    /// One-line description used in report rows.
    pub fn label(&self) -> String {
        let worst = self.wcet_factors.iter().fold(1.0f64, |acc, &f| acc.max(f));
        format!(
            "wcet<=x{worst:.3} Ts x{:.2} {:?}",
            self.period_scale, self.policy
        )
    }
}

/// Everything a sweep returns: the deterministic summary plus the merged
/// latency histogram and (optionally) the merged telemetry stream.
#[derive(Debug)]
pub struct SweepOutput {
    /// Per-scenario rows and robustness statistics (deterministic bytes).
    pub summary: SweepSummary,
    /// Actuation latencies of *all* scenarios merged into one fixed-shape
    /// histogram (bound: twice the largest scaled period).
    pub actuation_hist: Histogram,
    /// Merged telemetry of the first `trace_scenarios` scenarios, tracks
    /// prefixed `s<i>:` so timestamps stay monotone per track.
    pub traces: RecordingSink,
}

/// Runs `f` over `0..count` on `workers` self-scheduling threads and
/// returns the results **in index order** — the pool pulls indices from a
/// shared counter (work stealing by self-scheduling), but completion
/// order never leaks into the output.
pub fn map_indexed<R, F>(count: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let r = f(i);
                slots.lock().expect("result slots")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots")
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

/// The sweep-level histogram bound: twice the largest scaled period, so
/// even overrunning actuations stay in range.
fn sweep_bound_ns(spec: &LoopSpec, config: &SweepConfig) -> i64 {
    let max_scale = config
        .period_scales
        .iter()
        .fold(1.0f64, |acc, &s| acc.max(s));
    (TimeNs::from_secs_f64(spec.ts * max_scale).as_nanos() * 2).max(1)
}

/// Runs one scenario end to end: jitter → (cached) adequation →
/// graph-of-delays co-simulation → metrics.
fn run_scenario(
    spec: &LoopSpec,
    base: &SplitScenario,
    config: &SweepConfig,
    cache: &ScheduleCache,
    index: usize,
) -> Result<(ScenarioOutcome, Histogram, RecordingSink), CoreError> {
    let scenario = Scenario::derive(config, base, index);
    let db = scenario.jittered_db(base);
    let options = AdequationOptions {
        policy: scenario.policy,
    };
    let schedule = cache
        .get_or_compute(&base.alg, &base.arch, &db, options)
        .map_err(CoreError::from)?;

    let mut spec2 = spec.clone();
    spec2.ts = spec.ts * scenario.period_scale;
    // The delay-graph builder rejects makespan > period; a badly jittered
    // schedule stretches the period just enough (deterministically).
    let makespan_s = schedule.makespan().as_secs_f64();
    if makespan_s > spec2.ts {
        spec2.ts = makespan_s * 1.05;
    }

    let ideal = cosim::run_ideal(&spec2)?;
    let traced = index < config.trace_scenarios;
    let (run, sink) = if traced {
        let sink = PrefixSink::new(format!("s{index}:"), RecordingSink::default());
        let mut tel = Collector::new(sink);
        let run = cosim::run_scheduled_traced(
            &spec2, &base.alg, &base.io, &schedule, &base.arch, &mut tel,
        )?;
        (run, tel.into_sink().into_inner())
    } else {
        let run = cosim::run_scheduled(&spec2, &base.alg, &base.io, &schedule, &base.arch)?;
        (run, RecordingSink::default())
    };

    let report = run.latency_report()?;
    let mut hist = Histogram::new(sweep_bound_ns(spec, config), SWEEP_BUCKETS);
    let mut worst = 0i64;
    for series in &report.actuation {
        for &v in series.values() {
            hist.record(v.as_nanos());
            worst = worst.max(v.as_nanos());
        }
    }
    let outcome = ScenarioOutcome {
        index,
        seed: scenario.seed,
        label: scenario.label(),
        cost: run.cost,
        cost_ratio: run.cost / ideal.cost,
        makespan_ns: schedule.makespan().as_nanos(),
        worst_actuation_ns: worst,
        overruns: report.total_overruns(),
    };
    Ok((outcome, hist, sink))
}

/// Runs the whole sweep on `config.workers` threads.
///
/// The returned [`SweepOutput`] is byte-identical for any worker count:
/// scenario seeds depend only on `(base_seed, index)` and aggregation
/// folds in index order.
///
/// # Errors
///
/// Returns the lowest-index scenario failure, if any (also independent of
/// worker count).
pub fn run_sweep(
    spec: &LoopSpec,
    base: &SplitScenario,
    config: &SweepConfig,
) -> Result<SweepOutput, CoreError> {
    let cache = ScheduleCache::new();
    let results = map_indexed(config.scenario_count, config.workers, |i| {
        run_scenario(spec, base, config, &cache, i)
    });

    let mut scenarios = Vec::with_capacity(config.scenario_count);
    let mut merged = Histogram::new(sweep_bound_ns(spec, config), SWEEP_BUCKETS);
    let mut traces = RecordingSink::default();
    for result in results {
        let (outcome, hist, sink) = result?;
        scenarios.push(outcome);
        merged.merge(&hist);
        traces.absorb(sink);
    }
    Ok(SweepOutput {
        summary: SweepSummary {
            scenarios,
            cost_bound_ratio: config.cost_bound_ratio,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
        },
        actuation_hist: merged,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dc_motor_loop, split_scenario};

    fn small_base() -> SplitScenario {
        split_scenario(
            2,
            1,
            TimeNs::from_micros(200),
            TimeNs::from_micros(50),
            TimeNs::from_micros(500),
        )
        .unwrap()
    }

    fn small_config(workers: usize) -> SweepConfig {
        SweepConfig {
            scenario_count: 8,
            workers,
            trace_scenarios: 2,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn seeds_are_index_deterministic_and_distinct() {
        let a: Vec<u64> = (0..16).map(|i| scenario_seed(42, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| scenario_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "seeds must be distinct");
        assert_ne!(scenario_seed(42, 0), scenario_seed(43, 0));
    }

    #[test]
    fn map_indexed_orders_results_for_any_worker_count() {
        for workers in [1, 2, 5, 64] {
            let out = map_indexed(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn scenario_derivation_is_pure() {
        let base = small_base();
        let config = small_config(1);
        let a = Scenario::derive(&config, &base, 3);
        let b = Scenario::derive(&config, &base, 3);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.wcet_factors, b.wcet_factors);
        assert_eq!(a.period_scale, b.period_scale);
        assert_eq!(a.policy, b.policy);
        for &f in &a.wcet_factors {
            assert!((1.0..=1.0 + config.wcet_jitter).contains(&f));
        }
        // The jittered table never shrinks a WCET.
        let db = a.jittered_db(&base);
        let base_defaults: std::collections::HashMap<_, _> = base.db.iter_defaults().collect();
        for (op, t) in db.iter_defaults() {
            assert!(t >= base_defaults[&op], "jitter must only inflate WCETs");
        }
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let serial = run_sweep(&spec, &base, &small_config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &small_config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.actuation_hist, parallel.actuation_hist);
        assert_eq!(serial.traces, parallel.traces);
        // Sanity: the sweep actually ran and measured something.
        assert_eq!(serial.summary.scenarios.len(), 8);
        assert!(serial.actuation_hist.count() > 0);
        assert!(serial
            .summary
            .scenarios
            .iter()
            .all(|s| s.cost_ratio.is_finite() && s.cost_ratio > 0.0));
        // Round-robin policies + repeated tables mean the cache must see
        // every lookup and deduplicate at least nothing-or-more.
        let s = &serial.summary;
        assert_eq!(
            s.cache_hits + s.cache_misses,
            s.scenarios.len() as u64,
            "one cache lookup per scenario"
        );
        // Two traced scenarios produced namespaced tracks.
        let rendered = serial.traces.render();
        assert!(rendered.contains("s0:"), "missing s0 prefix:\n{rendered}");
        assert!(rendered.contains("s1:"), "missing s1 prefix:\n{rendered}");
    }
}
