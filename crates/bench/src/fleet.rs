//! `ecl-fleet` — a deterministic multi-threaded scenario-sweep engine.
//!
//! A single lifecycle run answers "how does *this* implementation
//! behave?"; a robustness study needs the same answer over hundreds of
//! perturbed implementations (WCET jitter, mapping policy, sampling
//! period). This module runs such a Monte-Carlo sweep over the full
//! adequation → graph-of-delays → co-simulation pipeline on a
//! self-scheduling pool of `std::thread` workers, with two guarantees:
//!
//! * **Determinism** — the sweep report is byte-identical regardless of
//!   worker count. Every scenario derives its PRNG seed from the sweep
//!   seed and its own index ([`scenario_seed`], a splitmix64 stream), and
//!   the aggregator folds per-scenario results in index order, never in
//!   completion order.
//! * **No redundant scheduling** — an [`ScheduleCache`] shared by all
//!   workers memoizes adequation results by content digest; scenarios
//!   draw their WCET jitter from a small set of quantized tables
//!   ([`SweepConfig::wcet_tables`]), so scenarios sharing a table and
//!   policy present identical adequation inputs and skip the scheduler.
//!
//! With [`SweepConfig::profile`] the sweep additionally records where its
//! wall time goes: each worker fills a private [`WorkerProfile`] with
//! per-scenario phase spans (no shared-state writes on the hot path), and
//! the joined buffers merge index-ordered into
//! [`SweepOutput::profile`] — the only output carrying wall-clock
//! readings, so every deterministic artifact stays byte-identical with
//! profiling on or off.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use ecl_aaa::{
    codegen, AdequationOptions, Fnv1a, MappingPolicy, Schedule, ScheduleCache, TimeNs, TimingDb,
};
use ecl_core::cosim::{self, CosimPhases, IdealRunCache, LoopResult, LoopSpec, ScheduledRunCache};
use ecl_core::faults::{FaultConfig, FaultFamily, FaultPlan};
use ecl_core::latency::LatencyReport;
use ecl_core::report::{
    DegradationSummary, PruneSummary, ScenarioOutcome, SweepSummary, ValidationSummary,
    VerificationSummary,
};
use ecl_core::xval;
use ecl_core::CoreError;
use ecl_exec::ExecOptions;
use ecl_telemetry::{
    Collector, Histogram, Phase, PrefixSink, ProfileReport, RecordingSink, WorkerProfile,
};

use crate::SplitScenario;

/// Buckets of the sweep-level actuation-latency histogram. Public so
/// external drivers (e.g. `ecl-serve`) can allocate scratch histograms
/// at the exact shape [`run_scenario`] merges into.
pub const SWEEP_BUCKETS: usize = 64;

/// Salt separating the WCET-table seed stream from the scenario seed
/// stream: table `t`'s factors derive from
/// [`scenario_seed`]`(base_seed ^ WCET_TABLE_SALT, t)`, so a table's
/// content depends only on the sweep seed and the table index — never on
/// which scenario drew it.
const WCET_TABLE_SALT: u64 = 0x57ce_7ab1_e5a1_7000;

/// The splitmix64 finalizer: a bijective avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives scenario `index`'s PRNG seed from the sweep seed: element
/// `index` of the splitmix64 stream starting at `base`. Workers never
/// share PRNG state, so the derivation — not scheduling order — fixes
/// every random draw.
pub fn scenario_seed(base: u64, index: usize) -> u64 {
    splitmix64(base.wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Per-scenario PRNG over the splitmix64 stream of [`scenario_seed`].
#[derive(Debug, Clone)]
struct FleetRng {
    state: u64,
}

impl FleetRng {
    fn new(seed: u64) -> Self {
        FleetRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state.wrapping_sub(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform in `[0, 1)` (53-bit resolution).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)` by rejection sampling (no modulo bias).
    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next_u64();
            if x < zone {
                return (x % n) as usize;
            }
        }
    }
}

/// Fault-injection axes of a sweep (experiment E12-FAULT).
///
/// Each scenario draws one rate per fault class from these lists,
/// *after* its WCET and period draws, so all-zero axes leave historical
/// scenarios (and their report bytes) untouched.
#[derive(Debug, Clone)]
pub struct FaultAxes {
    /// Per-transmission frame-loss probabilities; each scenario draws one.
    pub frame_loss_rates: Vec<f64>,
    /// Per-period link-outage start probabilities; each scenario draws one.
    pub link_outage_rates: Vec<f64>,
    /// Per-period processor-dropout hazards; each scenario draws one.
    pub proc_dropout_rates: Vec<f64>,
    /// Retransmission budget per frame before the period's transfer drops.
    pub max_retries: u32,
    /// Length of a link-outage window, in periods.
    pub outage_periods: u32,
}

impl Default for FaultAxes {
    fn default() -> Self {
        FaultAxes {
            frame_loss_rates: vec![0.0],
            link_outage_rates: vec![0.0],
            proc_dropout_rates: vec![0.0],
            max_retries: 3,
            outage_periods: 2,
        }
    }
}

impl FaultAxes {
    /// `true` when no axis can produce a fault (the sweep is fault-free).
    pub fn is_zero(&self) -> bool {
        let all_zero = |v: &[f64]| v.iter().all(|&r| r == 0.0);
        all_zero(&self.frame_loss_rates)
            && all_zero(&self.link_outage_rates)
            && all_zero(&self.proc_dropout_rates)
    }
}

/// What a sweep varies and how large it is.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Sweep-level seed; scenario `i` uses [`scenario_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Number of scenarios.
    pub scenario_count: usize,
    /// Worker threads (clamped to at least 1). Must not affect results.
    pub workers: usize,
    /// Maximum fractional WCET inflation: each operation's WCET is scaled
    /// by a factor drawn uniformly from `[1, 1 + wcet_jitter]`.
    pub wcet_jitter: f64,
    /// Number of quantized WCET tables the jitter draws are binned into:
    /// each scenario draws a table *index* and the table's per-operation
    /// factors derive from `(base_seed, table)` alone. Scenarios sharing
    /// a table (and mapping policy) present identical adequation inputs,
    /// so the [`ScheduleCache`] can actually hit — a continuous per-
    /// scenario draw would make every schedule digest unique and starve
    /// the cache. Must be at least 1.
    pub wcet_tables: usize,
    /// Sampling-period scales; each scenario draws one uniformly.
    pub period_scales: Vec<f64>,
    /// Mapping policies, assigned round-robin by scenario index. A
    /// [`MappingPolicy::Random`] entry is re-seeded with the scenario
    /// seed.
    pub policies: Vec<MappingPolicy>,
    /// A scenario is robust when `cost / ideal cost <= cost_bound_ratio`.
    pub cost_bound_ratio: f64,
    /// Capture merged telemetry traces for the first `trace_scenarios`
    /// scenarios (they get `s<i>:`-prefixed tracks in the merged stream).
    pub trace_scenarios: usize,
    /// Fault-injection axes; the all-zero default keeps the sweep
    /// fault-free and its report byte-identical to pre-fault sweeps.
    pub faults: FaultAxes,
    /// Cross-validate every scenario: generate executives, execute them
    /// on the `ecl-exec` virtual machine (with the scenario's fault
    /// plan, if any) and compare the measured completion instants
    /// against the graph-of-delays prediction. Off by default; the
    /// report stays byte-identical when off.
    pub validate_executive: bool,
    /// Statically verify every scenario: run the `ecl-verify` passes over
    /// its schedule and check that the sound static `Ls`/`La` bounds
    /// dominate the measured latencies of the co-simulated run. Off by
    /// default; the report stays byte-identical when off.
    pub verify_static: bool,
    /// Profile the sweep: every worker records per-scenario phase spans
    /// into a private [`WorkerProfile`] buffer, merged after the pool
    /// joins into [`SweepOutput::profile`]. Wall-clock readings live only
    /// in that sidecar — the summary, histogram and trace artifacts are
    /// byte-identical with profiling on or off, for any worker count.
    pub profile: bool,
    /// Memoize untraced co-simulations in a shared [`ScheduledRunCache`]
    /// keyed by the `(loop × schedule × fault-plan)` content digest: the
    /// quantized axes pigeonhole large sweeps onto a few distinct keys,
    /// so all but the first scenario per key clone an `Arc` instead of
    /// simulating. The memoized result is bit-identical to a fresh run
    /// (pinned by unit tests, proptests and the byte-identity sweep
    /// test), so every deterministic artifact is byte-identical with the
    /// memo on or off. Off by default so baseline benchmarks (E15/E16)
    /// keep measuring the unmemoized pipeline.
    pub memoize_scheduled: bool,
    /// Memoize per-scenario latency metrics in a shared [`ReportCache`]
    /// keyed by `(scheduled-run digest, histogram bound)`: the latency
    /// report, its bucketed actuation histogram, the worst actuation and
    /// the overrun count are all pure functions of the co-simulated run's
    /// bytes, so two scenarios pricing to the same run digest share one
    /// report extraction. The memoized values are identical to freshly
    /// extracted ones (pinned by the byte-identity sweep test), keeping
    /// every deterministic artifact byte-identical with the memo on or
    /// off. Off by default for the same baseline-benchmark reason as
    /// [`memoize_scheduled`](SweepConfig::memoize_scheduled).
    pub memoize_reports: bool,
    /// Statically prune scenarios by fault-envelope abstract
    /// interpretation: before co-simulating, evaluate the sound
    /// `[lo, hi]` completion envelope of the scenario's *fault family*
    /// (`ecl_verify::fault_envelope`). A conclusively safe or unsafe
    /// verdict skips the ideal run and the co-simulation entirely and
    /// contributes a statically derived report row (cost 0, worst
    /// actuation = envelope upper bound) — a pure function of
    /// `(config, index)`, so pruned sweeps stay byte-identical for any
    /// worker count. Traced scenarios are never pruned (their telemetry
    /// is the point). Off by default; the report grows a `### Static
    /// pruning` section only when on.
    pub prune_static: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            base_seed: 0xec1_f1ee7,
            scenario_count: 64,
            workers: 1,
            wcet_jitter: 0.30,
            wcet_tables: 16,
            period_scales: vec![1.0, 1.25, 1.5],
            policies: vec![
                MappingPolicy::SchedulePressure,
                MappingPolicy::EarliestFinish,
            ],
            cost_bound_ratio: 1.5,
            trace_scenarios: 0,
            faults: FaultAxes::default(),
            validate_executive: false,
            verify_static: false,
            profile: false,
            memoize_scheduled: false,
            memoize_reports: false,
            prune_static: false,
        }
    }
}

/// A concrete perturbation of the baseline, fully determined by
/// `(config, index)` — deriving it never consults shared state.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index within the sweep.
    pub index: usize,
    /// The derived PRNG seed.
    pub seed: u64,
    /// Index of the quantized WCET table this scenario drew.
    pub wcet_table: usize,
    /// Per-operation WCET scale factors, in [`ecl_aaa::OpId`] index order
    /// — the content of table [`wcet_table`](Scenario::wcet_table), a
    /// function of `(base_seed, wcet_table)` only.
    pub wcet_factors: Vec<f64>,
    /// Sampling-period scale.
    pub period_scale: f64,
    /// Mapping policy for this scenario's adequation.
    pub policy: MappingPolicy,
    /// Per-transmission frame-loss probability of this scenario.
    pub frame_loss_rate: f64,
    /// Per-period link-outage start probability of this scenario.
    pub link_outage_rate: f64,
    /// Per-period processor-dropout hazard of this scenario.
    pub proc_dropout_rate: f64,
}

impl Scenario {
    /// Derives scenario `index` of a sweep over `base`.
    pub fn derive(config: &SweepConfig, base: &SplitScenario, index: usize) -> Scenario {
        let seed = scenario_seed(config.base_seed, index);
        let mut rng = FleetRng::new(seed);
        // The scenario draws a WCET *table index*; the table's content
        // comes from its own seed stream, independent of the scenario.
        // Scenarios sharing a table therefore present byte-identical
        // timing tables to the scheduler and can share a cached schedule.
        let wcet_table = rng.below(config.wcet_tables.max(1));
        let mut table_rng = FleetRng::new(scenario_seed(
            config.base_seed ^ WCET_TABLE_SALT,
            wcet_table,
        ));
        // Ops are visited in index order so draws are reproducible; the
        // timing table itself iterates in unspecified (HashMap) order.
        let wcet_factors: Vec<f64> = base
            .alg
            .ops()
            .map(|_| 1.0 + config.wcet_jitter * table_rng.next_f64())
            .collect();
        let period_scale = config.period_scales[rng.below(config.period_scales.len())];
        // Fault rates are drawn after the historical axes so that an
        // all-zero `FaultAxes` reproduces pre-fault scenario draws (and
        // hence report bytes) exactly.
        let axes = &config.faults;
        let frame_loss_rate = axes.frame_loss_rates[rng.below(axes.frame_loss_rates.len())];
        let link_outage_rate = axes.link_outage_rates[rng.below(axes.link_outage_rates.len())];
        let proc_dropout_rate = axes.proc_dropout_rates[rng.below(axes.proc_dropout_rates.len())];
        let mut policy = config.policies[index % config.policies.len()];
        if let MappingPolicy::Random { .. } = policy {
            policy = MappingPolicy::Random { seed };
        }
        Scenario {
            index,
            seed,
            wcet_table,
            wcet_factors,
            period_scale,
            policy,
            frame_loss_rate,
            link_outage_rate,
            proc_dropout_rate,
        }
    }

    /// `true` when this scenario injects at least one fault class.
    pub fn has_faults(&self) -> bool {
        self.frame_loss_rate > 0.0 || self.link_outage_rate > 0.0 || self.proc_dropout_rate > 0.0
    }

    /// The fault-injection configuration of this scenario: plan seed =
    /// scenario seed, budgets from the sweep axes.
    pub fn fault_config(&self, axes: &FaultAxes) -> FaultConfig {
        FaultConfig {
            seed: self.seed,
            frame_loss_rate: self.frame_loss_rate,
            max_retries: axes.max_retries,
            link_outage_rate: self.link_outage_rate,
            outage_periods: axes.outage_periods,
            proc_dropout_rate: self.proc_dropout_rate,
        }
    }

    /// The perturbed WCET table: every default and processor-specific
    /// entry scaled by its operation's factor (interdictions kept).
    pub fn jittered_db(&self, base: &SplitScenario) -> TimingDb {
        let scale = |t: TimeNs, f: f64| {
            TimeNs::from_nanos(((t.as_nanos() as f64 * f).round() as i64).max(1))
        };
        let mut db = base.db.clone();
        let mut defaults: Vec<_> = base.db.iter_defaults().collect();
        defaults.sort_by_key(|&(op, _)| op);
        for (op, t) in defaults {
            db.set_default(op, scale(t, self.wcet_factors[op.index()]));
        }
        let mut specific: Vec<_> = base.db.iter_specific().collect();
        specific.sort_by_key(|&(op, p, _)| (op, p));
        for (op, p, t) in specific {
            db.set(op, p, scale(t, self.wcet_factors[op.index()]));
        }
        db
    }

    /// One-line description used in report rows. Fault rates appear only
    /// when non-zero, keeping fault-free labels byte-identical to
    /// pre-fault sweeps.
    pub fn label(&self) -> String {
        let worst = self.wcet_factors.iter().fold(1.0f64, |acc, &f| acc.max(f));
        let mut s = format!(
            "wcet<=x{worst:.3} Ts x{:.2} {:?}",
            self.period_scale, self.policy
        );
        if self.has_faults() {
            s.push_str(&format!(
                " faults fl{:.3} ol{:.3} pd{:.4}",
                self.frame_loss_rate, self.link_outage_rate, self.proc_dropout_rate
            ));
        }
        s
    }
}

/// Everything a sweep returns: the deterministic summary plus the merged
/// latency histogram and (optionally) the merged telemetry stream.
#[derive(Debug)]
pub struct SweepOutput {
    /// Per-scenario rows and robustness statistics (deterministic bytes).
    pub summary: SweepSummary,
    /// Actuation latencies of *all* scenarios merged into one fixed-shape
    /// histogram (bound: twice the largest scaled period).
    pub actuation_hist: Histogram,
    /// Merged telemetry of the first `trace_scenarios` scenarios, tracks
    /// prefixed `s<i>:` so timestamps stay monotone per track.
    pub traces: RecordingSink,
    /// The merged fleet profile ([`SweepConfig::profile`]); `None` when
    /// profiling is off. The only sweep output carrying wall-clock
    /// readings.
    pub profile: Option<ProfileReport>,
    /// Ideal-run memo lookups answered from the cache
    /// ([`IdealRunCache::hits`] — digest-derived, worker-count
    /// invariant). Carried beside the summary, never inside it: the
    /// summary's rendered bytes predate the memo and must stay
    /// byte-identical, so these counters belong to experiment sidecars.
    pub ideal_hits: u64,
    /// Distinct ideal runs actually simulated ([`IdealRunCache::misses`]).
    pub ideal_misses: u64,
    /// Scheduled-run memo lookups answered from the cache
    /// ([`ScheduledRunCache::hits`] — digest-derived, worker-count
    /// invariant). Same sidecar contract as [`SweepOutput::ideal_hits`]:
    /// beside the summary, never inside it.
    pub scheduled_hits: u64,
    /// Distinct `(loop × schedule × fault-plan)` co-simulations actually
    /// run ([`ScheduledRunCache::misses`]).
    pub scheduled_misses: u64,
    /// Report-memo lookups answered from the cache ([`ReportCache::hits`]
    /// — digest-derived, worker-count invariant). Same sidecar contract
    /// as [`SweepOutput::ideal_hits`]: beside the summary, never inside
    /// it. Zero unless [`SweepConfig::memoize_reports`] is set.
    pub report_hits: u64,
    /// Distinct `(run digest, bound)` report extractions actually
    /// performed ([`ReportCache::misses`]).
    pub report_misses: u64,
    /// Racing double-computes observed by the schedule cache, the
    /// ideal-run memo, the scheduled-run memo and the report memo, in
    /// that order. Unlike every other counter here these depend on thread
    /// interleaving — wall-clock-class contention diagnostics that may
    /// vary run to run, so they belong in profiler/bench sidecars and
    /// must never enter a diffed artifact.
    pub races: [u64; 4],
}

/// Batch of consecutive indices one claim takes: small enough that the
/// tail imbalance stays under a few percent of the sweep, large enough
/// that a 10⁵-scenario sweep of sub-millisecond tasks touches the shared
/// counter and the result-slot lock thousands of times instead of a
/// hundred thousand. Small sweeps degrade to one-at-a-time claiming,
/// which keeps load balancing exact where it matters most.
fn claim_batch(count: usize, workers: usize) -> usize {
    (count / (workers * 16)).clamp(1, 32)
}

/// Like [`map_indexed`], but each worker additionally owns a private
/// state created by `init(worker_index)` and threaded through every task
/// it claims; the joined states are returned **in worker-index order**
/// alongside the results. The fleet profiler rides here: its per-worker
/// buffers are worker state, so the hot path never writes shared memory.
///
/// Workers claim **batches** of consecutive indices ([`claim_batch`])
/// from the shared counter and publish each batch's results under one
/// lock acquisition, amortizing pool overhead over small tasks. Results
/// are still slotted by index, so claiming granularity can never leak
/// into the output order.
pub fn map_indexed_with<R, W, G, F>(count: usize, workers: usize, init: G, f: F) -> (Vec<R>, Vec<W>)
where
    R: Send,
    W: Send,
    G: Fn(usize) -> W + Sync,
    F: Fn(usize, &mut W) -> R + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    let batch = claim_batch(count, workers);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..count).map(|_| None).collect());
    let states: Mutex<Vec<Option<W>>> = Mutex::new((0..workers).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, slots, states, init, f) = (&next, &slots, &states, &init, &f);
            scope.spawn(move || {
                let mut state = init(w);
                let mut local: Vec<(usize, R)> = Vec::with_capacity(batch);
                loop {
                    let start = next.fetch_add(batch, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    let end = (start + batch).min(count);
                    for i in start..end {
                        local.push((i, f(i, &mut state)));
                    }
                    let mut slots = slots.lock().expect("result slots");
                    for (i, r) in local.drain(..) {
                        slots[i] = Some(r);
                    }
                }
                states.lock().expect("worker states")[w] = Some(state);
            });
        }
    });
    let results = slots
        .into_inner()
        .expect("result slots")
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect();
    let states = states
        .into_inner()
        .expect("worker states")
        .into_iter()
        .map(|s| s.expect("every worker parked its state"))
        .collect();
    (results, states)
}

/// Runs `f` over `0..count` on `workers` self-scheduling threads and
/// returns the results **in index order** — the pool pulls indices from a
/// shared counter (work stealing by self-scheduling), but completion
/// order never leaks into the output.
pub fn map_indexed<R, F>(count: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_indexed_with(count, workers, |_| (), |i, ()| f(i)).0
}

/// Parses an `ECL_FLEET_WORKERS` value: a positive integer worker count.
///
/// # Errors
///
/// Rejects `0` (a sweep with no workers cannot run) and anything
/// non-numeric, naming the variable so a typo fails loudly instead of
/// silently falling back to a default.
pub fn parse_workers(value: &str) -> Result<usize, CoreError> {
    let trimmed = value.trim();
    let workers: usize = trimmed.parse().map_err(|_| CoreError::InvalidInput {
        reason: format!("ECL_FLEET_WORKERS must be a positive integer, got {trimmed:?}"),
    })?;
    if workers == 0 {
        return Err(CoreError::InvalidInput {
            reason: "ECL_FLEET_WORKERS must be at least 1 (unset it for the default)".into(),
        });
    }
    Ok(workers)
}

/// The validated worker count from `ECL_FLEET_WORKERS`, or `None` when
/// the variable is unset.
///
/// # Errors
///
/// Same as [`parse_workers`] — a set-but-invalid value is an error, never
/// a silent fallback.
pub fn workers_from_env() -> Result<Option<usize>, CoreError> {
    match std::env::var("ECL_FLEET_WORKERS") {
        Ok(value) => parse_workers(&value).map(Some),
        Err(_) => Ok(None),
    }
}

/// A boxed unit of pool work.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// Shared state of one [`FleetPool::run_with`] call: the claim counter,
/// the index-addressed result slots, the per-lane states and the
/// completion latch.
struct PoolJob<R, W> {
    count: usize,
    batch: usize,
    next: AtomicUsize,
    slots: Mutex<Vec<Option<R>>>,
    states: Mutex<Vec<Option<W>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

/// A resident fleet: long-lived worker threads fed from an MPSC inbox.
///
/// [`map_indexed_with`] spawns and joins a scoped pool per sweep — the
/// right shape for a one-shot experiment binary, and measurably wrong for
/// a daemon that answers many small sweep jobs: thread spawn/join cost
/// lands on every request. `FleetPool` keeps the workers alive across
/// jobs; [`run_with`](FleetPool::run_with) reproduces the
/// `map_indexed_with` contract (index-ordered results, worker states in
/// lane order, batched claiming via [`claim_batch`]) on top of them, so a
/// sweep sharded over the pool stays byte-identical to one run on scoped
/// threads. Jobs submitted concurrently interleave at lane granularity;
/// each lane task runs to completion independently, so no job can
/// deadlock another.
///
/// Dropping the pool closes the inbox and joins every worker.
pub struct FleetPool {
    workers: usize,
    sender: Option<mpsc::Sender<PoolTask>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for FleetPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl FleetPool {
    /// Spawns a resident pool of `workers` threads (clamped to at least
    /// one).
    pub fn new(workers: usize) -> FleetPool {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<PoolTask>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|w| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("fleet-{w}"))
                    .spawn(move || loop {
                        // Hold the inbox lock only for the blocking recv;
                        // the task itself runs unlocked.
                        let task = receiver.lock().expect("fleet pool inbox").recv();
                        match task {
                            Ok(task) => task(),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn fleet pool worker")
            })
            .collect();
        FleetPool {
            workers,
            sender: Some(sender),
            handles,
        }
    }

    /// Number of resident worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// [`map_indexed_with`] on the resident pool: runs `f` over
    /// `0..count` across at most `workers()` lanes, each lane owning a
    /// private state from `init(lane)`, and blocks until the job
    /// completes. Results come back **in index order** and lane states in
    /// lane order — identical aggregation semantics to the scoped-thread
    /// pool, so sweep artifacts cannot depend on which pool ran them.
    pub fn run_with<R, W, G, F>(&self, count: usize, init: G, f: F) -> (Vec<R>, Vec<W>)
    where
        R: Send + 'static,
        W: Send + 'static,
        G: Fn(usize) -> W + Send + Sync + 'static,
        F: Fn(usize, &mut W) -> R + Send + Sync + 'static,
    {
        let lanes = self.workers.clamp(1, count.max(1));
        let job = Arc::new(PoolJob::<R, W> {
            count,
            batch: claim_batch(count, lanes),
            next: AtomicUsize::new(0),
            slots: Mutex::new((0..count).map(|_| None).collect()),
            states: Mutex::new((0..lanes).map(|_| None).collect()),
            remaining: Mutex::new(lanes),
            done: Condvar::new(),
        });
        let init = Arc::new(init);
        let f = Arc::new(f);
        let sender = self.sender.as_ref().expect("pool inbox open");
        for lane in 0..lanes {
            let job = Arc::clone(&job);
            let init = Arc::clone(&init);
            let f = Arc::clone(&f);
            sender
                .send(Box::new(move || {
                    let mut state = init(lane);
                    let mut local: Vec<(usize, R)> = Vec::with_capacity(job.batch);
                    loop {
                        let start = job.next.fetch_add(job.batch, Ordering::Relaxed);
                        if start >= job.count {
                            break;
                        }
                        let end = (start + job.batch).min(job.count);
                        for i in start..end {
                            local.push((i, f(i, &mut state)));
                        }
                        let mut slots = job.slots.lock().expect("pool result slots");
                        for (i, r) in local.drain(..) {
                            slots[i] = Some(r);
                        }
                    }
                    job.states.lock().expect("pool lane states")[lane] = Some(state);
                    let mut remaining = job.remaining.lock().expect("pool latch");
                    *remaining -= 1;
                    if *remaining == 0 {
                        job.done.notify_all();
                    }
                }))
                .expect("fleet pool worker hung up");
        }
        let mut remaining = job.remaining.lock().expect("pool latch");
        while *remaining > 0 {
            remaining = job.done.wait(remaining).expect("pool latch");
        }
        drop(remaining);
        let results = job
            .slots
            .lock()
            .expect("pool result slots")
            .iter_mut()
            .map(|r| r.take().expect("every index produced a result"))
            .collect();
        let states = job
            .states
            .lock()
            .expect("pool lane states")
            .iter_mut()
            .map(|s| s.take().expect("every lane parked its state"))
            .collect();
        (results, states)
    }
}

impl Drop for FleetPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker's recv fail and exit.
        self.sender.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The sweep-level histogram bound: twice the largest scaled period, so
/// even overrunning actuations stay in range. Public so external
/// drivers can build [`run_scenario`]-compatible scratch histograms.
pub fn sweep_bound_ns(spec: &LoopSpec, config: &SweepConfig) -> i64 {
    let max_scale = config
        .period_scales
        .iter()
        .fold(1.0f64, |acc, &s| acc.max(s));
    (TimeNs::from_secs_f64(spec.ts * max_scale).as_nanos() * 2).max(1)
}

/// What one scenario contributes to the sweep fold: its report row, the
/// optional degradation twin delta, its telemetry sink, the optional
/// `(is_exact, max divergence ns)` verdict of the executive
/// cross-validation, the optional
/// `(errors, warnings, soundness margin ns)` yield of the static
/// verification (margin `None` under a drop-capable plan, whose retry
/// bounds are declaredly unsound), and the adequation digest its
/// schedule priced to (the [`SweepAccumulator`]'s job-local cache
/// counters derive from these). The scenario's actuation latencies go
/// straight into the caller's scratch [`Histogram`], never through this
/// record — the sweep fold allocates no per-scenario histograms.
#[derive(Debug)]
pub struct ScenarioRecord {
    /// The deterministic report row.
    pub outcome: ScenarioOutcome,
    /// Degradation delta against the fault-free twin, when faults ran.
    pub degradation: Option<DegradationSummary>,
    /// Telemetry of a traced scenario (empty otherwise).
    pub traces: RecordingSink,
    /// `(is_exact, max divergence ns)` of the executive cross-validation.
    pub validation: Option<(bool, i64)>,
    /// `(errors, warnings, margin ns)` of the static verification.
    pub verification: Option<(usize, usize, Option<i64>)>,
    /// Verdict of the static fault-envelope pruning pass: `None` when
    /// the pass did not run (pruning off, or a traced scenario);
    /// conclusive verdicts mean the scenario skipped co-simulation.
    pub prune: Option<ecl_verify::EnvelopeVerdict>,
    /// Adequation digest of this scenario's schedule.
    pub schedule_digest: u64,
}

/// One memoized latency extraction: everything the Metrics phase derives
/// from a co-simulated run at a given histogram bound.
#[derive(Debug, Clone)]
pub struct ReportEntry {
    /// The per-period sampling/actuation latency report.
    pub report: LatencyReport,
    /// Actuation latencies bucketed at the sweep bound
    /// ([`sweep_bound_ns`], [`SWEEP_BUCKETS`] buckets) — merged into the
    /// caller's scratch histogram on every lookup.
    pub hist: Histogram,
    /// Worst actuation latency of the run.
    pub worst_actuation_ns: i64,
    /// Total period overruns of the run.
    pub overruns: usize,
}

/// A cached report entry plus the number of times it was looked up.
#[derive(Debug)]
struct ReportSlot {
    entry: Arc<ReportEntry>,
    lookups: u64,
}

#[derive(Debug, Default)]
struct ReportState {
    map: HashMap<u64, ReportSlot>,
    local_misses: u64,
}

/// The key of one memoized report extraction: the
/// [`cosim::scheduled_run_digest`] of the run (which covers the loop
/// spec, the schedule inputs and the fault plan — and therefore also the
/// strict-vs-lenient extraction mode, since leniency tracks plan
/// presence) mixed with the histogram bound, because a shared daemon
/// cache serves jobs whose period axes imply different bounds.
pub fn report_digest(run_digest: u64, bound_ns: i64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(run_digest);
    h.write_i64(bound_ns);
    h.finish()
}

/// A thread-safe memo table from [`report_digest`] keys to Metrics-phase
/// yields ([`ReportEntry`]).
///
/// Same discipline as [`ScheduledRunCache`] and its siblings: the lock is
/// held only around the map lookup/insert, never across the extraction
/// (racing workers both derive the identical entry; the second insert is
/// a no-op), and [`hits`](ReportCache::hits)/
/// [`misses`](ReportCache::misses) are derived from per-digest lookup
/// counts, so they are identical for any worker count and claim order.
/// They still belong beside — never inside — byte-compared sweep
/// artifacts.
#[derive(Debug, Default)]
pub struct ReportCache {
    state: Mutex<ReportState>,
}

impl ReportCache {
    /// An empty memo table.
    pub fn new() -> Self {
        ReportCache::default()
    }

    /// The entry for `digest`, building it with `build` only on a miss.
    /// Returns the shared entry and whether *this* lookup was answered
    /// from the cache (a wall-clock observation — sidecar-only).
    ///
    /// # Errors
    ///
    /// Propagates `build` errors; failures are not cached.
    pub fn get_or_build<F>(
        &self,
        digest: u64,
        build: F,
    ) -> Result<(Arc<ReportEntry>, bool), CoreError>
    where
        F: FnOnce() -> Result<ReportEntry, CoreError>,
    {
        if let Some(slot) = self
            .state
            .lock()
            .expect("report memo lock")
            .map
            .get_mut(&digest)
        {
            slot.lookups += 1;
            return Ok((Arc::clone(&slot.entry), true));
        }
        // Extracted outside the lock: latency extraction walks every
        // period of the run and must not serialize the pool.
        let entry = Arc::new(build()?);
        let mut state = self.state.lock().expect("report memo lock");
        state.local_misses += 1;
        let slot = state
            .map
            .entry(digest)
            .or_insert_with(|| ReportSlot { entry, lookups: 0 });
        slot.lookups += 1;
        Ok((Arc::clone(&slot.entry), false))
    }

    /// Lookups beyond the first of their digest — derived from per-digest
    /// lookup counts, so identical for any worker count.
    pub fn hits(&self) -> u64 {
        self.state
            .lock()
            .expect("report memo lock")
            .map
            .values()
            .map(|slot| slot.lookups.saturating_sub(1))
            .sum()
    }

    /// Distinct digests ever looked up — the report extractions a serial
    /// sweep would actually have performed. Derived, order-invariant.
    pub fn misses(&self) -> u64 {
        self.len() as u64
    }

    /// Racing double-extractions: local-miss observations beyond the
    /// first of their digest. Thread-interleaving-dependent —
    /// sidecar-only.
    pub fn races(&self) -> u64 {
        let state = self.state.lock().expect("report memo lock");
        state.local_misses.saturating_sub(state.map.len() as u64)
    }

    /// Number of distinct entries currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("report memo lock").map.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The shared memo tables one sweep (or one resident daemon) threads
/// through every scenario: adequation schedules, stroboscopic ideal
/// runs, scheduled co-simulations and latency-report extractions.
///
/// [`run_sweep`] creates a fresh set per call; a daemon keeps one set
/// alive across jobs (and warm-starts the first three from disk), which
/// is why the summary's cache counters are derived job-locally by the
/// [`SweepAccumulator`] instead of read off these global tables.
#[derive(Debug, Default)]
pub struct SweepCaches {
    /// Content-addressed adequation memo.
    pub schedule: ScheduleCache,
    /// Ideal (stroboscopic reference) run memo.
    pub ideal: IdealRunCache,
    /// Scheduled co-simulation memo ([`SweepConfig::memoize_scheduled`]).
    pub scheduled: ScheduledRunCache,
    /// Latency-report memo ([`SweepConfig::memoize_reports`]).
    pub reports: ReportCache,
}

impl SweepCaches {
    /// A fresh, empty set of memo tables.
    pub fn new() -> Self {
        SweepCaches::default()
    }
}

/// Folds [`ScenarioRecord`]s — **in index order** — into the
/// deterministic sweep artifacts: the [`SweepSummary`] and the merged
/// telemetry stream.
///
/// The summary's `cache_hits`/`cache_misses` are derived from the
/// multiset of schedule digests the job's own scenarios priced to
/// (lookups beyond the first of their digest are hits, distinct digests
/// are misses). On a fresh [`SweepCaches`] this equals the global
/// [`ScheduleCache`] counters exactly; on a daemon's warm shared caches
/// it still reports what *this* job deduplicated — which is what keeps a
/// response's bytes identical whether the daemon answered it cold, warm,
/// or after a restart.
#[derive(Debug)]
pub struct SweepAccumulator {
    cost_bound_ratio: f64,
    scenarios: Vec<ScenarioOutcome>,
    degradations: Vec<DegradationSummary>,
    traces: RecordingSink,
    validation: Option<ValidationSummary>,
    verification: Option<VerificationSummary>,
    prune: Option<PruneSummary>,
    schedule_digests: HashMap<u64, u64>,
}

impl SweepAccumulator {
    /// An empty fold for a sweep over `config`.
    pub fn new(config: &SweepConfig) -> Self {
        SweepAccumulator {
            cost_bound_ratio: config.cost_bound_ratio,
            scenarios: Vec::with_capacity(config.scenario_count),
            degradations: Vec::new(),
            traces: RecordingSink::default(),
            validation: config.validate_executive.then_some(ValidationSummary {
                validated: 0,
                exact: 0,
                max_divergence_ns: 0,
            }),
            verification: config.verify_static.then_some(VerificationSummary {
                verified: 0,
                errors: 0,
                warnings: 0,
                worst_margin_ns: i64::MAX,
            }),
            prune: config.prune_static.then_some(PruneSummary {
                evaluated: 0,
                pruned_safe: 0,
                pruned_unsafe: 0,
                simulated: 0,
            }),
            schedule_digests: HashMap::new(),
        }
    }

    /// Folds the next scenario's record. Call in index order.
    pub fn push(&mut self, record: ScenarioRecord) {
        *self
            .schedule_digests
            .entry(record.schedule_digest)
            .or_insert(0) += 1;
        self.scenarios.push(record.outcome);
        self.degradations.extend(record.degradation);
        self.traces.absorb(record.traces);
        if let (Some(v), Some((exact, max_div))) = (self.validation.as_mut(), record.validation) {
            v.validated += 1;
            if exact {
                v.exact += 1;
            }
            v.max_divergence_ns = v.max_divergence_ns.max(max_div);
        }
        if let (Some(v), Some((errors, warnings, margin))) =
            (self.verification.as_mut(), record.verification)
        {
            v.verified += 1;
            v.errors += errors;
            v.warnings += warnings;
            if let Some(m) = margin {
                v.worst_margin_ns = v.worst_margin_ns.min(m);
            }
        }
        if let Some(p) = self.prune.as_mut() {
            match record.prune {
                Some(v) => {
                    p.evaluated += 1;
                    match v {
                        ecl_verify::EnvelopeVerdict::Safe => p.pruned_safe += 1,
                        ecl_verify::EnvelopeVerdict::Unsafe => p.pruned_unsafe += 1,
                        ecl_verify::EnvelopeVerdict::Inconclusive => p.simulated += 1,
                    }
                }
                None => p.simulated += 1,
            }
        }
    }

    /// Number of records folded so far.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` when nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Finishes the fold into the deterministic summary and the merged
    /// telemetry stream.
    pub fn finish(mut self) -> (SweepSummary, RecordingSink) {
        if let Some(v) = self.verification.as_mut() {
            if v.worst_margin_ns == i64::MAX {
                v.worst_margin_ns = 0;
            }
        }
        let cache_hits = self
            .schedule_digests
            .values()
            .map(|&count| count.saturating_sub(1))
            .sum();
        let cache_misses = self.schedule_digests.len() as u64;
        (
            SweepSummary {
                scenarios: self.scenarios,
                cost_bound_ratio: self.cost_bound_ratio,
                cache_hits,
                cache_misses,
                degradations: self.degradations,
                validation: self.validation,
                verification: self.verification,
                prune: self.prune,
            },
            self.traces,
        )
    }
}

/// Records the synthesis/simulation wall-clock split of one
/// [`cosim::run_scheduled_phased`] call as two back-to-back profile
/// spans starting at `start_ns`.
fn push_cosim_spans(wp: &mut WorkerProfile, scenario: usize, start_ns: u64, phases: CosimPhases) {
    let synthesized = start_ns + phases.synthesis_wall_ns;
    wp.push_span(scenario, Phase::Synthesis, start_ns, synthesized);
    wp.push_span(
        scenario,
        Phase::Cosim,
        synthesized,
        synthesized + phases.simulation_wall_ns,
    );
}

/// Attributes one memoized co-simulation lookup that started at
/// `start_ns`: a miss carries real synthesis/simulation phases; a hit
/// charges the lookup itself (digest + lock + `Arc` clone) to the
/// co-simulation phase, so the profile shows what the memo reduced the
/// phase *to* rather than dropping the time on the floor.
fn push_memo_spans(
    wp: &mut WorkerProfile,
    scenario: usize,
    start_ns: u64,
    hit: bool,
    phases: CosimPhases,
) {
    if hit {
        let end = wp.now_ns();
        wp.push_span(scenario, Phase::Cosim, start_ns, end);
    } else {
        push_cosim_spans(wp, scenario, start_ns, phases);
    }
}

/// One untraced graph-of-delays co-simulation with its profile spans.
/// With [`SweepConfig::memoize_scheduled`] the lookup goes through the
/// shared [`ScheduledRunCache`] and reports on the profiler's memo
/// channel; without it the co-simulation runs fresh — the pre-memo
/// fleet pipeline, kept for baseline benchmarks and for the
/// byte-identity tests that pin the memoized artifacts against it.
#[allow(clippy::too_many_arguments)]
fn scheduled_cosim(
    config: &SweepConfig,
    scheduled_memo: &ScheduledRunCache,
    spec2: &LoopSpec,
    base: &SplitScenario,
    schedule: &Schedule,
    schedule_digest: u64,
    plan: Option<&FaultPlan>,
    index: usize,
    wp: &mut WorkerProfile,
) -> Result<Arc<LoopResult>, CoreError> {
    let t0 = wp.now_ns();
    if config.memoize_scheduled {
        let (run, key, hit, phases) = scheduled_memo.get_or_run_phased(
            spec2,
            &base.alg,
            &base.io,
            schedule,
            &base.arch,
            schedule_digest,
            plan,
        )?;
        wp.memo_event(index, key, hit);
        push_memo_spans(wp, index, t0, hit, phases);
        Ok(run)
    } else {
        let (run, phases) = cosim::run_scheduled_phased(
            spec2,
            &base.alg,
            &base.io,
            schedule,
            &base.arch,
            plan.cloned(),
        )?;
        push_cosim_spans(wp, index, t0, phases);
        Ok(Arc::new(run))
    }
}

/// The latency report a scenario's verification phase reads: freshly
/// extracted, or shared out of the [`ReportCache`].
enum ScenarioReport {
    Fresh(LatencyReport),
    Cached(Arc<ReportEntry>),
}

impl ScenarioReport {
    fn get(&self) -> &LatencyReport {
        match self {
            ScenarioReport::Fresh(report) => report,
            ScenarioReport::Cached(entry) => &entry.report,
        }
    }
}

/// Extracts the Metrics-phase yield of one run: the latency report
/// (lenient under faults), its actuation histogram at the sweep shape,
/// the worst actuation and the overrun count — everything a
/// [`ReportCache`] hit must reproduce bit-exactly.
fn build_report_entry(
    run: &LoopResult,
    lenient: bool,
    bound_ns: i64,
) -> Result<ReportEntry, CoreError> {
    let report = if lenient {
        run.latency_report_lenient()?
    } else {
        run.latency_report()?
    };
    let mut hist = Histogram::new(bound_ns, SWEEP_BUCKETS);
    let mut worst = 0i64;
    for series in &report.actuation {
        for &v in series.values() {
            hist.record(v.as_nanos());
            worst = worst.max(v.as_nanos());
        }
    }
    let overruns = report.total_overruns();
    Ok(ReportEntry {
        report,
        hist,
        worst_actuation_ns: worst,
        overruns,
    })
}

/// Runs one scenario end to end: jitter → (cached) adequation →
/// (memoized) graph-of-delays co-simulation → metrics. With
/// [`SweepConfig::memoize_scheduled`], untraced co-simulations are
/// answered by the shared [`ScheduledRunCache`] keyed on the
/// `(loop × schedule × fault-plan)` digest — two scenarios that price
/// to the same key share one simulation and clone the `Arc`. A scenario with fault rates
/// also runs its fault-free twin on the same schedule and returns the
/// degradation delta between the two. With
/// [`SweepConfig::validate_executive`] it additionally executes the
/// generated executives on the virtual machine and returns
/// `(is_exact, max divergence ns)` against the delay-graph prediction.
///
/// Every stage is wrapped in a [`WorkerProfile`] phase; with profiling
/// off the wrappers are branch-only no-ops and the computation is the
/// same expression either way, so results cannot depend on the flag.
///
/// `scratch` is the worker's reused actuation histogram (created once
/// per worker at the [`sweep_bound_ns`]/[`SWEEP_BUCKETS`] shape): the
/// scenario's latencies are recorded (or, on a report-memo hit, merged)
/// into it in place, so the hot loop allocates no per-scenario
/// histograms. `index` is a *global* scenario index — seeds, labels and
/// trace prefixes derive from it — which is how a daemon shards one
/// logical sweep into chunks without perturbing a single byte.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario(
    spec: &LoopSpec,
    base: &SplitScenario,
    config: &SweepConfig,
    caches: &SweepCaches,
    index: usize,
    wp: &mut WorkerProfile,
    scratch: &mut Histogram,
) -> Result<ScenarioRecord, CoreError> {
    let (scenario, db, mut spec2) = wp.phase(index, Phase::Derive, |_| {
        let scenario = Scenario::derive(config, base, index);
        let db = scenario.jittered_db(base);
        // The spec clone allocates the loop matrices, so it belongs to
        // the derivation phase, not to unattributed overhead.
        let mut spec2 = spec.clone();
        spec2.ts = spec.ts * scenario.period_scale;
        (scenario, db, spec2)
    });
    let options = AdequationOptions {
        policy: scenario.policy,
    };
    let (schedule, digest, hit) = wp.phase(index, Phase::Adequation, |_| {
        caches
            .schedule
            .get_or_compute_traced(&base.alg, &base.arch, &db, options)
            .map_err(CoreError::from)
    })?;
    wp.cache_event(index, digest, hit);

    // The delay-graph builder rejects makespan > period; a badly jittered
    // schedule stretches the period just enough (deterministically).
    let makespan_s = schedule.makespan().as_secs_f64();
    if makespan_s > spec2.ts {
        spec2.ts = makespan_s * 1.05;
    }

    let traced = index < config.trace_scenarios;
    // Static pruning: evaluate the sound completion envelope of the
    // scenario's whole fault *family* before running anything. The
    // verdict is a pure function of `(config, index)` — no PRNG state
    // beyond the scenario derivation, no shared caches — so pruned rows
    // are byte-stable for any worker count. Conclusive verdicts return
    // a statically derived row; inconclusive ones fall through to the
    // full pipeline and are counted as simulated.
    let prune = if config.prune_static && !traced {
        let family = FaultFamily::from_config(&scenario.fault_config(&config.faults));
        let period = TimeNs::from_secs_f64(spec2.ts);
        let envelope = wp.phase(index, Phase::Envelope, |_| {
            ecl_verify::fault_envelope(&base.alg, &base.arch, &schedule, period, &family, None)
        });
        let verdict = envelope.verdict();
        if verdict != ecl_verify::EnvelopeVerdict::Inconclusive {
            let overruns = if verdict == ecl_verify::EnvelopeVerdict::Unsafe {
                // Every period's actuation can land past the deadline.
                (spec2.horizon / spec2.ts).floor().max(1.0) as usize
            } else {
                0
            };
            let suffix = if verdict == ecl_verify::EnvelopeVerdict::Safe {
                "safe"
            } else {
                "unsafe"
            };
            return Ok(ScenarioRecord {
                outcome: ScenarioOutcome {
                    index,
                    seed: scenario.seed,
                    label: format!("{} pruned:{suffix}", scenario.label()),
                    cost: 0.0,
                    cost_ratio: 0.0,
                    makespan_ns: schedule.makespan().as_nanos(),
                    worst_actuation_ns: envelope.max_actuation_hi().as_nanos(),
                    overruns,
                },
                degradation: None,
                traces: RecordingSink::default(),
                validation: None,
                verification: None,
                prune: Some(verdict),
                schedule_digest: digest,
            });
        }
        Some(verdict)
    } else {
        None
    };

    // The stroboscopic reference is pure in `spec2` — and `spec2` varies
    // only in its period across the sweep — so it is memoized by content
    // digest: one simulation per distinct period, everything else is an
    // `Arc` clone out of the shared table.
    let ideal = wp.phase(index, Phase::IdealSim, |_| caches.ideal.get_or_run(&spec2))?;
    let periods = (spec2.horizon / spec2.ts).floor().max(1.0) as u32;
    // The plan is a pure function of (config, schedule, arch, periods),
    // so the co-simulation and the virtual executive below are driven by
    // byte-identical fault fates.
    let plan = scenario
        .has_faults()
        .then(|| {
            wp.phase(index, Phase::FaultPlan, |_| {
                FaultPlan::generate(
                    &scenario.fault_config(&config.faults),
                    &schedule,
                    &base.arch,
                    periods,
                )
            })
        })
        .transpose()?;
    let (run, degradation, sink) = if let Some(plan) = &plan {
        // Faulty scenarios compare against a fault-free twin on the same
        // schedule; they never contribute telemetry traces (tracing the
        // degraded replay would double the sink for no new information).
        let baseline = scheduled_cosim(
            config,
            &caches.scheduled,
            &spec2,
            base,
            &schedule,
            digest,
            None,
            index,
            wp,
        )?;
        let faulty = scheduled_cosim(
            config,
            &caches.scheduled,
            &spec2,
            base,
            &schedule,
            digest,
            Some(plan),
            index,
            wp,
        )?;
        let degradation = wp.phase(index, Phase::Metrics, |_| {
            DegradationSummary::from_runs(index, plan, &baseline, &faulty, config.cost_bound_ratio)
        })?;
        (faulty, Some(degradation), RecordingSink::default())
    } else if traced {
        // The traced driver interleaves synthesis, timeline emission and
        // simulation, so the whole run is attributed to co-simulation.
        let (run, sink) = wp.phase(index, Phase::Cosim, |_| {
            let sink = PrefixSink::new(format!("s{index}:"), RecordingSink::default());
            let mut tel = Collector::new(sink);
            let run = cosim::run_scheduled_traced(
                &spec2, &base.alg, &base.io, &schedule, &base.arch, &mut tel,
            )?;
            // Surface the hot-loop engine counters into the same stream:
            // sim-derived, deterministic, stamped at the horizon.
            let horizon_ns = TimeNs::from_secs_f64(spec2.horizon).as_nanos();
            for ev in run.stats_events(horizon_ns) {
                tel.emit(|| ev);
            }
            Ok::<_, CoreError>((run, tel.into_sink().into_inner()))
        })?;
        (Arc::new(run), None, sink)
    } else {
        let run = scheduled_cosim(
            config,
            &caches.scheduled,
            &spec2,
            base,
            &schedule,
            digest,
            None,
            index,
            wp,
        )?;
        (run, None, RecordingSink::default())
    };

    let bound = sweep_bound_ns(spec, config);
    let (outcome, report) = wp.phase(index, Phase::Metrics, |_| {
        // Forced rendezvous under faults legitimately pushes sampling
        // past its period, so degraded runs are measured leniently.
        let lenient = scenario.has_faults();
        let outcome_for = |worst: i64, overruns: usize| ScenarioOutcome {
            index,
            seed: scenario.seed,
            label: scenario.label(),
            cost: run.cost,
            cost_ratio: run.cost / ideal.cost,
            makespan_ns: schedule.makespan().as_nanos(),
            worst_actuation_ns: worst,
            overruns,
        };
        if config.memoize_reports && !traced {
            let key = report_digest(
                cosim::scheduled_run_digest(&spec2, digest, plan.as_ref()),
                bound,
            );
            let (entry, _local_hit) = caches
                .reports
                .get_or_build(key, || build_report_entry(&run, lenient, bound))?;
            scratch.merge(&entry.hist);
            Ok::<_, CoreError>((
                outcome_for(entry.worst_actuation_ns, entry.overruns),
                ScenarioReport::Cached(entry),
            ))
        } else {
            let report = if lenient {
                run.latency_report_lenient()?
            } else {
                run.latency_report()?
            };
            let mut worst = 0i64;
            for series in &report.actuation {
                for &v in series.values() {
                    scratch.record(v.as_nanos());
                    worst = worst.max(v.as_nanos());
                }
            }
            let overruns = report.total_overruns();
            Ok((outcome_for(worst, overruns), ScenarioReport::Fresh(report)))
        }
    })?;

    // Measured-vs-modeled cross-validation: execute the generated
    // executives on the virtual machine under the *same* fault plan the
    // co-simulation used, and diff completion instants op by op.
    let validation = if config.validate_executive {
        wp.phase(index, Phase::Validation, |_| {
            let generated =
                codegen::generate(&schedule, &base.alg, &base.arch).map_err(CoreError::from)?;
            let period = TimeNs::from_secs_f64(spec2.ts);
            let opts = ExecOptions {
                period,
                periods,
                faults: plan.as_ref(),
            };
            let measured =
                ecl_exec::run(&generated, &base.arch, &schedule, &opts).map_err(|e| {
                    CoreError::InvalidInput {
                        reason: format!("virtual executive of scenario {index}: {e}"),
                    }
                })?;
            let predicted = xval::predict_op_completions(
                &base.alg,
                &base.arch,
                &schedule,
                period,
                periods,
                plan.as_ref(),
            )?;
            let report = xval::validate_schedule(&measured.timeline(), &predicted, &base.alg)?;
            Ok::<_, CoreError>(Some((report.is_exact(), report.max_divergence_ns())))
        })?
    } else {
        None
    };

    // Static verification: run every `ecl-verify` pass over the scenario's
    // schedule, then check soundness — the static `Ls`/`La` bounds must
    // dominate every latency the co-simulation measured.
    let verification = if config.verify_static {
        wp.phase(index, Phase::Verification, |_| {
            let period = TimeNs::from_secs_f64(spec2.ts);
            let vreport =
                ecl_verify::verify(&base.alg, &base.arch, &db, &schedule, period, plan.as_ref())
                    .map_err(CoreError::from)?;
            let bounds = vreport
                .bounds
                .as_ref()
                .expect("verify always derives bounds");
            let margin = if bounds.drop_capable {
                // Deadline forcing takes over; the retry bounds are
                // unsound by declaration, so the scenario contributes no
                // margin.
                None
            } else {
                let mut margin: Option<i64> = None;
                let rep = report.get();
                let sensors = base.io.sensors.iter().zip(&rep.sampling);
                let actuators = base.io.actuators.iter().zip(&rep.actuation);
                for (op, series) in sensors.chain(actuators) {
                    if let Some(b) = bounds.bound_for(*op) {
                        for &v in series.values() {
                            let m = b.faulty.as_nanos() - v.as_nanos();
                            margin = Some(margin.map_or(m, |cur| cur.min(m)));
                        }
                    }
                }
                margin
            };
            Ok::<_, CoreError>(Some((
                vreport.count(ecl_verify::Severity::Error),
                vreport.count(ecl_verify::Severity::Warn),
                margin,
            )))
        })?
    } else {
        None
    };
    Ok(ScenarioRecord {
        outcome,
        degradation,
        traces: sink,
        validation,
        verification,
        prune,
        schedule_digest: digest,
    })
}

/// Runs the whole sweep on `config.workers` threads.
///
/// The returned [`SweepOutput`] is byte-identical for any worker count:
/// scenario seeds depend only on `(base_seed, index)` and aggregation
/// folds in index order.
///
/// # Errors
///
/// Returns the lowest-index scenario failure, if any (also independent of
/// worker count).
pub fn run_sweep(
    spec: &LoopSpec,
    base: &SplitScenario,
    config: &SweepConfig,
) -> Result<SweepOutput, CoreError> {
    let caches = SweepCaches::new();
    // One shared epoch so every worker's spans share a time base; the
    // buffers themselves are per-worker state — no hot-path sharing.
    let epoch = Instant::now();
    let bound = sweep_bound_ns(spec, config);
    let (results, buffers) = map_indexed_with(
        config.scenario_count,
        config.workers,
        |worker| {
            (
                WorkerProfile::new(worker, epoch, config.profile),
                Histogram::new(bound, SWEEP_BUCKETS),
            )
        },
        |i, state: &mut (WorkerProfile, Histogram)| {
            let (wp, scratch) = state;
            wp.task(|wp| run_scenario(spec, base, config, &caches, i, wp, scratch))
        },
    );
    let wall_ns = epoch.elapsed().as_nanos() as u64;
    // Bucket sums are commutative and associative, so merging the
    // per-worker scratch histograms (in worker-index order) yields bytes
    // identical to a per-scenario merge for any claim interleaving.
    let mut merged = Histogram::new(bound, SWEEP_BUCKETS);
    let mut profiles = Vec::with_capacity(buffers.len());
    for (wp, scratch) in buffers {
        merged.merge(&scratch);
        profiles.push(wp);
    }
    let profile = config
        .profile
        .then(|| ProfileReport::from_workers(wall_ns, profiles));

    let mut acc = SweepAccumulator::new(config);
    for result in results {
        acc.push(result?);
    }
    let (summary, traces) = acc.finish();
    Ok(SweepOutput {
        summary,
        actuation_hist: merged,
        traces,
        profile,
        ideal_hits: caches.ideal.hits(),
        ideal_misses: caches.ideal.misses(),
        scheduled_hits: caches.scheduled.hits(),
        scheduled_misses: caches.scheduled.misses(),
        report_hits: caches.reports.hits(),
        report_misses: caches.reports.misses(),
        races: [
            caches.schedule.races(),
            caches.ideal.races(),
            caches.scheduled.races(),
            caches.reports.races(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dc_motor_loop, split_scenario};
    use proptest::prelude::*;

    fn small_base() -> SplitScenario {
        split_scenario(
            2,
            1,
            TimeNs::from_micros(200),
            TimeNs::from_micros(50),
            TimeNs::from_micros(500),
        )
        .unwrap()
    }

    fn small_config(workers: usize) -> SweepConfig {
        SweepConfig {
            scenario_count: 8,
            workers,
            trace_scenarios: 2,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn seeds_are_index_deterministic_and_distinct() {
        let a: Vec<u64> = (0..16).map(|i| scenario_seed(42, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| scenario_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "seeds must be distinct");
        assert_ne!(scenario_seed(42, 0), scenario_seed(43, 0));
    }

    #[test]
    fn map_indexed_orders_results_for_any_worker_count() {
        for workers in [1, 2, 5, 64] {
            let out = map_indexed(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn map_indexed_with_returns_worker_states_in_index_order() {
        for workers in [1, 3, 8] {
            let (results, states) = map_indexed_with(
                20,
                workers,
                |w| (w, 0usize),
                |i, s: &mut (usize, usize)| {
                    s.1 += 1;
                    i * 2
                },
            );
            assert_eq!(results, (0..20).map(|i| i * 2).collect::<Vec<_>>());
            // One state per spawned worker, in worker-index order, and
            // the claim counts cover all tasks exactly once.
            assert_eq!(states.len(), workers.min(20));
            for (w, state) in states.iter().enumerate() {
                assert_eq!(state.0, w);
            }
            assert_eq!(states.iter().map(|s| s.1).sum::<usize>(), 20);
        }
    }

    #[test]
    fn parse_workers_rejects_zero_and_garbage() {
        assert_eq!(parse_workers("1").unwrap(), 1);
        assert_eq!(parse_workers(" 8 ").unwrap(), 8);
        for bad in ["0", "", "four", "-2", "1.5", "0x4"] {
            let err = parse_workers(bad).expect_err(bad);
            let msg = err.to_string();
            assert!(
                msg.contains("ECL_FLEET_WORKERS"),
                "error for {bad:?} must name the variable: {msg}"
            );
        }
    }

    #[test]
    fn scenario_derivation_is_pure() {
        let base = small_base();
        let config = small_config(1);
        let a = Scenario::derive(&config, &base, 3);
        let b = Scenario::derive(&config, &base, 3);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.wcet_factors, b.wcet_factors);
        assert_eq!(a.period_scale, b.period_scale);
        assert_eq!(a.policy, b.policy);
        for &f in &a.wcet_factors {
            assert!((1.0..=1.0 + config.wcet_jitter).contains(&f));
        }
        // The jittered table never shrinks a WCET.
        let db = a.jittered_db(&base);
        let base_defaults: std::collections::HashMap<_, _> = base.db.iter_defaults().collect();
        for (op, t) in db.iter_defaults() {
            assert!(t >= base_defaults[&op], "jitter must only inflate WCETs");
        }
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let serial = run_sweep(&spec, &base, &small_config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &small_config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.actuation_hist, parallel.actuation_hist);
        assert_eq!(serial.traces, parallel.traces);
        // Sanity: the sweep actually ran and measured something.
        assert_eq!(serial.summary.scenarios.len(), 8);
        assert!(serial.actuation_hist.count() > 0);
        assert!(serial
            .summary
            .scenarios
            .iter()
            .all(|s| s.cost_ratio.is_finite() && s.cost_ratio > 0.0));
        // Round-robin policies + repeated tables mean the cache must see
        // every lookup and deduplicate at least nothing-or-more.
        let s = &serial.summary;
        assert_eq!(
            s.cache_hits + s.cache_misses,
            s.scenarios.len() as u64,
            "one cache lookup per scenario"
        );
        // Two traced scenarios produced namespaced tracks.
        let rendered = serial.traces.render();
        assert!(rendered.contains("s0:"), "missing s0 prefix:\n{rendered}");
        assert!(rendered.contains("s1:"), "missing s1 prefix:\n{rendered}");
        // The all-zero default fault axes leave no degradation rows and
        // no fault section in either artifact.
        assert!(serial.summary.degradations.is_empty());
        assert!(!serial.summary.render().contains("Fault degradation"));
        assert!(!serial.summary.to_json().contains("degradations"));
    }

    /// Regression test for the `cache_hits: 0` bug: the digest covers
    /// exactly the adequation inputs, and quantized WCET tables mean
    /// scenarios actually repeat those inputs. With 2 tables and 2
    /// round-robin policies, 8 scenarios share at most 4 distinct
    /// digests, so at least 4 hits are guaranteed by pigeonhole — for
    /// any worker count, with identical counters.
    #[test]
    fn quantized_wcet_tables_produce_cache_hits() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            wcet_tables: 2,
            ..small_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        let s = &serial.summary;
        assert_eq!(s.cache_hits + s.cache_misses, 8, "one lookup per scenario");
        assert!(
            s.cache_hits >= 4,
            "8 scenarios over <= 4 digests must hit at least 4 times, got {}",
            s.cache_hits
        );
        assert_eq!(
            (s.cache_hits, s.cache_misses),
            (parallel.summary.cache_hits, parallel.summary.cache_misses),
            "cache counters must not depend on worker count"
        );
        assert_eq!(serial.summary, parallel.summary);
        // Scenarios sharing a table drew byte-identical factor vectors.
        let scenarios: Vec<Scenario> = (0..8)
            .map(|i| Scenario::derive(&config(1), &base, i))
            .collect();
        for a in &scenarios {
            for b in &scenarios {
                if a.wcet_table == b.wcet_table {
                    assert_eq!(a.wcet_factors, b.wcet_factors);
                }
            }
        }
        assert!(scenarios.iter().any(|s| s.wcet_table == 0));
        assert!(scenarios.iter().any(|s| s.wcet_table == 1));
    }

    #[test]
    fn profiled_sweep_keeps_artifacts_identical_and_attributes_phases() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let plain = run_sweep(&spec, &base, &small_config(1)).unwrap();
        assert!(plain.profile.is_none(), "profiling is off by default");
        let config = |workers| SweepConfig {
            profile: true,
            memoize_scheduled: true,
            ..small_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();

        // Profiling and memoization must not perturb any deterministic
        // artifact — `plain` ran with both off, so these equalities also
        // pin the memoized sweep byte-for-byte to the fresh pipeline.
        assert_eq!(plain.summary, serial.summary);
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(plain.actuation_hist, serial.actuation_hist);
        assert_eq!(serial.actuation_hist, parallel.actuation_hist);
        assert_eq!(plain.traces, serial.traces);
        assert_eq!(serial.traces, parallel.traces);

        let p1 = serial.profile.expect("profiling was requested");
        let p4 = parallel.profile.expect("profiling was requested");
        assert_eq!(p1.workers.len(), 1);
        assert_eq!(p4.workers.len(), 4);
        assert_eq!(p1.workers[0].tasks, 8);
        assert_eq!(p4.workers.iter().map(|w| w.tasks).sum::<u64>(), 8);

        // Every scenario contributes its pipeline phases exactly once.
        let count = |p: &ProfileReport, phase: Phase| {
            p.phases
                .iter()
                .find(|s| s.phase == phase)
                .map_or(0, |s| s.count)
        };
        for p in [&p1, &p4] {
            assert_eq!(count(p, Phase::Derive), 8);
            assert_eq!(count(p, Phase::Adequation), 8);
            assert_eq!(count(p, Phase::IdealSim), 8);
            assert_eq!(count(p, Phase::Cosim), 8);
            assert_eq!(count(p, Phase::FaultPlan), 0, "fault-free sweep");
            // The per-phase histogram holds one observation per span.
            for stat in &p.phases {
                assert_eq!(stat.hist.count(), stat.count);
                assert_eq!(stat.hist.overflow(), 0);
            }
        }

        // Cache attribution is keyed by digest and structurally
        // worker-count-invariant (per-digest lookup counts; only the
        // worker-local hit observations may differ).
        assert_eq!(p1.cache_lookups(), 8);
        assert_eq!(p4.cache_lookups(), 8);
        let shape = |p: &ProfileReport| {
            p.cache
                .iter()
                .map(|l| (l.digest, l.lookups, l.scenarios.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&p1), shape(&p4));

        // The scheduled-run memo reports on its own sidecar channel: one
        // lookup per untraced scenario, same structural invariance.
        assert_eq!(p1.memo_lookups(), 6);
        assert_eq!(p4.memo_lookups(), 6);
        let memo_shape = |p: &ProfileReport| {
            p.memo
                .iter()
                .map(|l| (l.digest, l.lookups, l.scenarios.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(memo_shape(&p1), memo_shape(&p4));

        // Attribution: the named phases cover the bulk of busy time, and
        // the report is internally consistent.
        assert!(p1.wall_ns > 0);
        assert!(p1.attributed_ns() <= p1.busy_ns());
        let frac = p1.attributed_fraction();
        assert!(
            frac > 0.5 && frac <= 1.0,
            "implausible attributed fraction {frac}"
        );
        assert!(p1.utilization() > 0.0 && p1.utilization() <= 1.0);

        // The exporters agree with the lanes.
        assert!(!p1.to_events().is_empty());
        assert!(p1.render().contains("co-simulation"));
        assert_eq!(p4.gantt(40).lines().count(), 1 + 4);
    }

    fn faulty_config(workers: usize) -> SweepConfig {
        SweepConfig {
            scenario_count: 6,
            workers,
            faults: FaultAxes {
                frame_loss_rates: vec![0.25, 0.5],
                link_outage_rates: vec![0.0, 0.2],
                proc_dropout_rates: vec![0.0, 0.02],
                ..FaultAxes::default()
            },
            ..SweepConfig::default()
        }
    }

    #[test]
    fn fault_sweep_is_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let serial = run_sweep(&spec, &base, &faulty_config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &faulty_config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        // Every scenario draws a non-zero frame-loss rate, so every row
        // has a degradation twin, in index order.
        assert_eq!(serial.summary.degradations.len(), 6);
        let indices: Vec<usize> = serial
            .summary
            .degradations
            .iter()
            .map(|d| d.index)
            .collect();
        assert_eq!(indices, (0..6).collect::<Vec<_>>());
        assert!(serial.summary.render().contains("### Fault degradation"));
        assert!(serial.summary.survivable_fraction().is_some());
        // The faults actually bit: some scenario lost frames or windows.
        let injected_total: u64 = serial
            .summary
            .degradations
            .iter()
            .map(|d| d.injected.total())
            .sum();
        assert!(injected_total > 0, "fault axes injected nothing");
    }

    #[test]
    fn validated_sweep_is_exact_and_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            validate_executive: true,
            ..small_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        let v = serial.summary.validation.expect("validation was requested");
        assert_eq!(v.validated, 8, "every scenario must be validated");
        assert_eq!(
            v.exact, 8,
            "virtual executive diverged from the graph of delays"
        );
        assert_eq!(v.max_divergence_ns, 0);
        assert!(serial
            .summary
            .render()
            .contains("### Executive cross-validation"));
        assert!(serial.summary.to_json().contains("\"validation\""));
        // The section is strictly additive: turning validation off keeps
        // the summary free of it (byte-compat is proven in ecl-core).
        let off = run_sweep(&spec, &base, &small_config(1)).unwrap();
        assert!(off.summary.validation.is_none());
        assert_eq!(off.summary.scenarios, serial.summary.scenarios);
    }

    #[test]
    fn verified_sweep_bounds_dominate_and_worker_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            verify_static: true,
            ..small_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        let v = serial
            .summary
            .verification
            .expect("verification was requested");
        assert_eq!(v.verified, 8, "every scenario must be verified");
        assert_eq!(v.errors, 0, "static verifier flagged a clean sweep");
        assert!(
            v.worst_margin_ns >= 0,
            "a measured latency exceeded its static bound"
        );
        assert!(serial.summary.render().contains("### Static verification"));
        assert!(serial.summary.to_json().contains("\"verification\""));
        // The section is strictly additive: off by default.
        let off = run_sweep(&spec, &base, &small_config(1)).unwrap();
        assert!(off.summary.verification.is_none());
        assert_eq!(off.summary.scenarios, serial.summary.scenarios);
    }

    #[test]
    fn verified_fault_sweep_counts_margins_soundly() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            verify_static: true,
            ..faulty_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        let v = serial
            .summary
            .verification
            .expect("verification was requested");
        assert_eq!(v.verified, 6);
        assert_eq!(v.errors, 0, "faulty scenarios must still verify cleanly");
        // Drop-capable scenarios contribute no margin; whatever margins
        // the retries-only scenarios contributed must be sound.
        assert!(
            v.worst_margin_ns >= 0,
            "a measured latency exceeded its fault-aware static bound"
        );
    }

    #[test]
    fn validated_fault_sweep_is_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            validate_executive: true,
            ..faulty_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        let v = serial.summary.validation.expect("validation was requested");
        assert_eq!(v.validated, 6);
        // Divergence, if any, is bounded by the horizon; exactness under
        // controlled fault plans is asserted by experiment E13-EXEC.
        assert!(v.exact <= v.validated);
        assert!(v.max_divergence_ns >= 0);
    }

    /// The sweep's ideal-run memo collapses the stroboscopic reference
    /// to one simulation per distinct period: every scenario looks up
    /// exactly once, distinct digests are bounded by the period-scale
    /// axis, and the derived counters are worker-count invariant.
    #[test]
    fn sweep_memoizes_ideal_runs_per_period() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let serial = run_sweep(&spec, &base, &small_config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &small_config(4)).unwrap();
        assert_eq!(
            serial.ideal_hits + serial.ideal_misses,
            8,
            "one ideal-memo lookup per scenario"
        );
        assert!(
            serial.ideal_misses <= small_config(1).period_scales.len() as u64,
            "at most one ideal run per period scale, got {} misses",
            serial.ideal_misses
        );
        assert!(serial.ideal_hits >= 5, "8 scenarios over <= 3 periods");
        assert_eq!(
            (serial.ideal_hits, serial.ideal_misses),
            (parallel.ideal_hits, parallel.ideal_misses),
            "memo counters must not depend on worker count"
        );
        // And the memo must not perturb the deterministic artifacts
        // (also pinned byte-exactly by the golden fleet test).
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
    }

    /// The scheduled-run memo collapses untraced co-simulations to one
    /// per distinct `(loop × schedule × fault-plan)` digest. With one
    /// WCET table the key space is bounded by `policies × period_scales`,
    /// so a 16-scenario sweep must hit by pigeonhole — and because the
    /// memoized result is bit-identical to a fresh run, every
    /// deterministic artifact stays byte-identical for any worker count.
    #[test]
    fn sweep_memoizes_scheduled_runs_by_content() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            scenario_count: 16,
            workers,
            wcet_tables: 1,
            memoize_scheduled: true,
            ..SweepConfig::default()
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        // The unmemoized pipeline is the reference: the memoized sweep
        // must reproduce its artifacts byte for byte.
        let fresh = run_sweep(
            &spec,
            &base,
            &SweepConfig {
                memoize_scheduled: false,
                ..config(1)
            },
        )
        .unwrap();
        assert_eq!(
            (fresh.scheduled_hits, fresh.scheduled_misses),
            (0, 0),
            "the unmemoized pipeline never touches the scheduled memo"
        );
        assert_eq!(fresh.summary, serial.summary);
        assert_eq!(fresh.summary.render(), serial.summary.render());
        assert_eq!(fresh.actuation_hist, serial.actuation_hist);
        assert_eq!(fresh.traces, serial.traces);
        assert_eq!(
            serial.scheduled_hits + serial.scheduled_misses,
            16,
            "one scheduled-memo lookup per untraced fault-free scenario"
        );
        let keys = (config(1).policies.len() * config(1).period_scales.len()) as u64;
        assert!(
            serial.scheduled_misses <= keys,
            "at most one co-simulation per (policy × period scale), got {} misses",
            serial.scheduled_misses
        );
        assert!(
            serial.scheduled_hits >= 16 - keys,
            "16 scenarios over <= {keys} keys must hit, got {}",
            serial.scheduled_hits
        );
        assert_eq!(
            (serial.scheduled_hits, serial.scheduled_misses),
            (parallel.scheduled_hits, parallel.scheduled_misses),
            "memo counters must not depend on worker count"
        );
        // The memo must not perturb any deterministic artifact.
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.actuation_hist, parallel.actuation_hist);
        assert_eq!(serial.traces, parallel.traces);
    }

    /// Faulty scenarios take two memo lookups (fault-free twin + faulty
    /// replay); twins share entries across scenarios with the same
    /// schedule and period while seeded plans keep the faulty keys
    /// distinct — all still worker-count invariant.
    #[test]
    fn fault_sweep_memoizes_twins_and_counts_double_lookups() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            wcet_tables: 1,
            scenario_count: 8,
            memoize_scheduled: true,
            ..faulty_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(
            serial.scheduled_hits + serial.scheduled_misses,
            16,
            "twin + faulty lookup per scenario"
        );
        // Every plan is seeded per scenario, so the 8 faulty runs keep 8
        // distinct keys; only the twins can collapse — and 8 twins over
        // the <= 6 (policy × period scale) twin keys must, by pigeonhole.
        assert!(
            serial.scheduled_misses >= 8,
            "seeded fault plans cannot share keys, got {} misses",
            serial.scheduled_misses
        );
        assert!(
            serial.scheduled_hits >= 2,
            "8 twins over <= 6 (policy × period) keys must collapse, got {}",
            serial.scheduled_hits
        );
        assert_eq!(
            (serial.scheduled_hits, serial.scheduled_misses),
            (parallel.scheduled_hits, parallel.scheduled_misses),
            "memo counters must not depend on worker count"
        );
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
    }

    /// Static pruning: fault-free scenarios carry a trivial family whose
    /// envelope is exact, so they prune conclusively safe; frame-loss
    /// scenarios admit drops and stay inconclusive (they co-simulate).
    /// Pruned rows are pure functions of `(config, index)` — worker-count
    /// invariant — and their envelope bounds must dominate what an
    /// unpruned sweep actually measures at the same index.
    #[test]
    fn pruned_sweep_is_sound_and_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            scenario_count: 16,
            workers,
            prune_static: true,
            faults: FaultAxes {
                frame_loss_rates: vec![0.0, 0.25],
                ..FaultAxes::default()
            },
            ..SweepConfig::default()
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.actuation_hist, parallel.actuation_hist);

        let p = serial.summary.prune.expect("pruning was requested");
        assert_eq!(p.evaluated, 16, "no traced scenarios: every envelope runs");
        assert_eq!(p.pruned_safe + p.pruned_unsafe + p.simulated, 16);
        assert!(p.pruned_safe > 0, "fault-free scenarios must prune safe");
        assert!(
            p.simulated > 0,
            "drop-admitting families must stay inconclusive"
        );
        assert!(serial.summary.render().contains("### Static pruning"));
        assert!(serial.summary.to_json().contains("\"prune\""));

        // Sampled soundness audit: the unpruned sweep at the same config
        // is ground truth, row for row.
        let unpruned = run_sweep(
            &spec,
            &base,
            &SweepConfig {
                prune_static: false,
                ..config(1)
            },
        )
        .unwrap();
        assert!(
            unpruned.summary.prune.is_none(),
            "pruning is off by default"
        );
        let mut audited_safe = 0;
        for (pr, gt) in serial
            .summary
            .scenarios
            .iter()
            .zip(&unpruned.summary.scenarios)
        {
            if pr.label.ends_with(" pruned:safe") {
                audited_safe += 1;
                assert_eq!(gt.overruns, 0, "safe-pruned scenario #{} overran", gt.index);
                assert!(
                    gt.worst_actuation_ns <= pr.worst_actuation_ns,
                    "scenario #{}: measured {} exceeds envelope bound {}",
                    gt.index,
                    gt.worst_actuation_ns,
                    pr.worst_actuation_ns
                );
                assert_eq!((pr.cost, pr.cost_ratio), (0.0, 0.0));
            } else {
                assert!(!pr.label.contains("pruned:"), "unexpected unsafe prune");
                assert_eq!(pr, gt, "unpruned scenarios must be untouched");
            }
        }
        assert_eq!(audited_safe, p.pruned_safe, "every safe prune was audited");
    }

    #[test]
    fn fleet_pool_matches_scoped_pool_and_survives_reuse() {
        let pool = FleetPool::new(3);
        assert_eq!(pool.workers(), 3);
        for round in 0..3usize {
            let (results, states) = pool.run_with(
                20,
                |lane| (lane, 0usize),
                move |i, s: &mut (usize, usize)| {
                    s.1 += 1;
                    i * 2 + round
                },
            );
            assert_eq!(results, (0..20).map(|i| i * 2 + round).collect::<Vec<_>>());
            assert_eq!(states.len(), 3);
            for (lane, state) in states.iter().enumerate() {
                assert_eq!(state.0, lane);
            }
            assert_eq!(states.iter().map(|s| s.1).sum::<usize>(), 20);
        }
        // An empty job completes without claiming anything.
        let (results, states) = pool.run_with(0, |lane| lane, |i, _s: &mut usize| i);
        assert!(results.is_empty());
        assert_eq!(states.len(), 1);
    }

    /// The resident-pool sharding a daemon uses — [`FleetPool::run_with`]
    /// over the public [`run_scenario`] folded by a [`SweepAccumulator`]
    /// — must reproduce [`run_sweep`]'s artifacts byte for byte, cold
    /// *and* warm: the second pass over the same shared [`SweepCaches`]
    /// answers from the memos (zero new co-simulations) yet yields the
    /// identical summary, because the accumulator derives its cache
    /// counters from the job's own digest multiset, not the global
    /// tables.
    #[test]
    fn pooled_sweep_reproduces_scoped_sweep_bytes_cold_and_warm() {
        let spec = dc_motor_loop(0.3).unwrap();
        let config = SweepConfig {
            memoize_scheduled: true,
            memoize_reports: true,
            ..small_config(4)
        };
        let reference = run_sweep(&spec, &small_base(), &config).unwrap();

        let pool = FleetPool::new(4);
        let caches = Arc::new(SweepCaches::new());
        let spec = Arc::new(spec);
        let base = Arc::new(small_base());
        let config = Arc::new(config);
        let bound = sweep_bound_ns(&spec, &config);
        let run_pass = || {
            let epoch = Instant::now();
            let profile_on = config.profile;
            let (results, buffers) = pool.run_with(
                config.scenario_count,
                move |lane| {
                    (
                        WorkerProfile::new(lane, epoch, profile_on),
                        Histogram::new(bound, SWEEP_BUCKETS),
                    )
                },
                {
                    let caches = Arc::clone(&caches);
                    let spec = Arc::clone(&spec);
                    let base = Arc::clone(&base);
                    let config = Arc::clone(&config);
                    move |i, state: &mut (WorkerProfile, Histogram)| {
                        let (wp, scratch) = state;
                        wp.task(|wp| run_scenario(&spec, &base, &config, &caches, i, wp, scratch))
                    }
                },
            );
            let mut merged = Histogram::new(bound, SWEEP_BUCKETS);
            for (_wp, scratch) in buffers {
                merged.merge(&scratch);
            }
            let mut acc = SweepAccumulator::new(&config);
            for result in results {
                acc.push(result.unwrap());
            }
            let (summary, traces) = acc.finish();
            (summary, traces, merged)
        };

        let (cold_summary, cold_traces, cold_hist) = run_pass();
        assert_eq!(cold_summary, reference.summary);
        assert_eq!(cold_summary.render(), reference.summary.render());
        assert_eq!(cold_summary.to_json(), reference.summary.to_json());
        assert_eq!(cold_traces, reference.traces);
        assert_eq!(cold_hist, reference.actuation_hist);

        let computes_after_cold = caches.scheduled.computes();
        let (warm_summary, warm_traces, warm_hist) = run_pass();
        assert_eq!(warm_summary, reference.summary);
        assert_eq!(warm_summary.render(), reference.summary.render());
        assert_eq!(warm_traces, reference.traces);
        assert_eq!(warm_hist, reference.actuation_hist);
        assert_eq!(
            caches.scheduled.computes(),
            computes_after_cold,
            "a warm pass must answer every untraced co-simulation from the memo"
        );
    }

    #[test]
    fn report_memo_keeps_artifacts_identical_and_counts() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            scenario_count: 8,
            workers,
            trace_scenarios: 2,
            wcet_tables: 1,
            period_scales: vec![1.0],
            memoize_reports: true,
            ..SweepConfig::default()
        };
        // The unmemoized pipeline is the reference: the memoized sweep
        // must reproduce its artifacts byte for byte.
        let fresh = run_sweep(
            &spec,
            &base,
            &SweepConfig {
                memoize_reports: false,
                ..config(1)
            },
        )
        .unwrap();
        assert_eq!(
            (fresh.report_hits, fresh.report_misses),
            (0, 0),
            "the unmemoized pipeline never touches the report memo"
        );
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(fresh.summary, serial.summary);
        assert_eq!(fresh.summary.render(), serial.summary.render());
        assert_eq!(fresh.actuation_hist, serial.actuation_hist);
        assert_eq!(fresh.traces, serial.traces);
        // One lookup per untraced scenario; one WCET table and one period
        // scale bound the keys by the policy axis, so pigeonhole forces
        // hits.
        assert_eq!(serial.report_hits + serial.report_misses, 6);
        assert!(
            serial.report_misses <= 2,
            "6 untraced scenarios over <= 2 (policy) keys, got {} misses",
            serial.report_misses
        );
        assert!(serial.report_hits >= 4);
        assert_eq!(
            (serial.report_hits, serial.report_misses),
            (parallel.report_hits, parallel.report_misses),
            "memo counters must not depend on worker count"
        );
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.actuation_hist, parallel.actuation_hist);
        assert_eq!(serial.traces, parallel.traces);
    }

    /// Degraded runs are measured leniently; the report key marks plan
    /// presence, so memoized lenient entries can never answer a strict
    /// lookup (or vice versa) and fault-sweep artifacts stay identical.
    #[test]
    fn report_memo_is_lenient_safe_under_faults() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let on = run_sweep(
            &spec,
            &base,
            &SweepConfig {
                memoize_reports: true,
                ..faulty_config(1)
            },
        )
        .unwrap();
        let off = run_sweep(&spec, &base, &faulty_config(1)).unwrap();
        assert_eq!(on.summary, off.summary);
        assert_eq!(on.summary.render(), off.summary.render());
        assert_eq!(on.actuation_hist, off.actuation_hist);
        assert_eq!(
            on.report_hits + on.report_misses,
            6,
            "one report lookup per (faulty) scenario"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 4 })]

        /// A memoized ideal run answers with bits identical to a fresh
        /// [`cosim::run_ideal`] for any sampling period — cost, instants,
        /// engine counters — so `cost_ratio` cannot depend on whether a
        /// scenario hit or missed the memo.
        #[test]
        fn ideal_memo_equals_fresh_run_for_random_periods(scale in 0.2f64..4.0) {
            let mut spec = dc_motor_loop(0.2).unwrap();
            spec.ts *= scale;
            let memo = IdealRunCache::new();
            let first = memo.get_or_run(&spec).unwrap();
            let second = memo.get_or_run(&spec).unwrap();
            prop_assert_eq!((memo.hits(), memo.misses()), (1, 1));
            let fresh = cosim::run_ideal(&spec).unwrap();
            for r in [&first, &second] {
                prop_assert_eq!(r.cost.to_bits(), fresh.cost.to_bits());
                prop_assert_eq!(&r.sample_instants, &fresh.sample_instants);
                prop_assert_eq!(&r.actuation_instants, &fresh.actuation_instants);
                prop_assert_eq!(&r.stats, &fresh.stats);
                prop_assert_eq!(&r.activity, &fresh.activity);
            }
        }

        /// A memoized scheduled run answers with bits identical to a
        /// fresh [`cosim::run_scheduled_faulty`] for any sampling period
        /// and fault draw — cost, instants, engine counters — so no sweep
        /// artifact can depend on whether a scenario hit or missed the
        /// scheduled memo.
        #[test]
        fn scheduled_memo_equals_fresh_faulty_run(
            scale in 0.5f64..3.0,
            seed in 0u64..(1u64 << 48),
            frame_loss in 0.0f64..0.6,
        ) {
            let base = small_base();
            let config = SweepConfig::default();
            let scenario = Scenario {
                seed,
                frame_loss_rate: frame_loss,
                ..Scenario::derive(&config, &base, 0)
            };
            let db = scenario.jittered_db(&base);
            let (schedule, digest, _) = ScheduleCache::new()
                .get_or_compute_traced(
                    &base.alg,
                    &base.arch,
                    &db,
                    AdequationOptions {
                        policy: scenario.policy,
                    },
                )
                .unwrap();
            let mut spec = dc_motor_loop(0.2).unwrap();
            spec.ts *= scale;
            let makespan_s = schedule.makespan().as_secs_f64();
            if makespan_s > spec.ts {
                spec.ts = makespan_s * 1.05;
            }
            let periods = (spec.horizon / spec.ts).floor().max(1.0) as u32;
            let plan = FaultPlan::generate(
                &scenario.fault_config(&config.faults),
                &schedule,
                &base.arch,
                periods,
            )
            .unwrap();
            let memo = ScheduledRunCache::new();
            let lookup = || {
                memo.get_or_run(
                    &spec,
                    &base.alg,
                    &base.io,
                    &schedule,
                    &base.arch,
                    digest,
                    Some(&plan),
                )
            };
            let first = lookup().unwrap();
            let second = lookup().unwrap();
            prop_assert_eq!((memo.hits(), memo.misses()), (1, 1));
            let fresh = cosim::run_scheduled_faulty(
                &spec,
                &base.alg,
                &base.io,
                &schedule,
                &base.arch,
                plan.clone(),
            )
            .unwrap();
            for r in [&first, &second] {
                prop_assert_eq!(r.cost.to_bits(), fresh.cost.to_bits());
                prop_assert_eq!(&r.sample_instants, &fresh.sample_instants);
                prop_assert_eq!(&r.actuation_instants, &fresh.actuation_instants);
                prop_assert_eq!(&r.stats, &fresh.stats);
                prop_assert_eq!(&r.activity, &fresh.activity);
            }
        }

        /// The plan a scenario ends up with must not depend on how many
        /// workers computed the sweep — only on `(base_seed, index)` and
        /// the schedule content. Zero-rate plans stay trivial for every
        /// seed, which is what keeps fault-free sweeps byte-identical to
        /// pre-fault ones.
        #[test]
        fn fault_plans_are_worker_count_invariant(base_seed in 0u64..(1u64 << 48)) {
            let base = small_base();
            let mut config = faulty_config(1);
            config.base_seed = base_seed;
            config.scenario_count = 5;
            let digests_on = |workers: usize| -> Vec<u64> {
                let cache = ScheduleCache::new();
                map_indexed(config.scenario_count, workers, |i| {
                    let scenario = Scenario::derive(&config, &base, i);
                    let db = scenario.jittered_db(&base);
                    let options = AdequationOptions {
                        policy: scenario.policy,
                    };
                    let schedule = cache
                        .get_or_compute(&base.alg, &base.arch, &db, options)
                        .unwrap();
                    FaultPlan::generate(
                        &scenario.fault_config(&config.faults),
                        &schedule,
                        &base.arch,
                        32,
                    )
                    .unwrap()
                    .digest()
                })
            };
            prop_assert_eq!(digests_on(1), digests_on(4));

            let zero = Scenario {
                frame_loss_rate: 0.0,
                link_outage_rate: 0.0,
                proc_dropout_rate: 0.0,
                ..Scenario::derive(&config, &base, 0)
            };
            let db = zero.jittered_db(&base);
            let schedule = ScheduleCache::new()
                .get_or_compute(
                    &base.alg,
                    &base.arch,
                    &db,
                    AdequationOptions {
                        policy: zero.policy,
                    },
                )
                .unwrap();
            let plan = FaultPlan::generate(
                &zero.fault_config(&config.faults),
                &schedule,
                &base.arch,
                32,
            )
            .unwrap();
            prop_assert!(plan.is_trivial());
        }
    }
}
