//! `ecl-fleet` — a deterministic multi-threaded scenario-sweep engine.
//!
//! A single lifecycle run answers "how does *this* implementation
//! behave?"; a robustness study needs the same answer over hundreds of
//! perturbed implementations (WCET jitter, mapping policy, sampling
//! period). This module runs such a Monte-Carlo sweep over the full
//! adequation → graph-of-delays → co-simulation pipeline on a
//! self-scheduling pool of `std::thread` workers, with two guarantees:
//!
//! * **Determinism** — the sweep report is byte-identical regardless of
//!   worker count. Every scenario derives its PRNG seed from the sweep
//!   seed and its own index ([`scenario_seed`], a splitmix64 stream), and
//!   the aggregator folds per-scenario results in index order, never in
//!   completion order.
//! * **No redundant scheduling** — an [`ScheduleCache`] shared by all
//!   workers memoizes adequation results by content digest, so scenarios
//!   that perturb only the period (or repeat a WCET table) skip the
//!   scheduler.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ecl_aaa::{codegen, AdequationOptions, MappingPolicy, ScheduleCache, TimeNs, TimingDb};
use ecl_core::cosim::{self, LoopSpec};
use ecl_core::faults::{FaultConfig, FaultPlan};
use ecl_core::report::{
    DegradationSummary, ScenarioOutcome, SweepSummary, ValidationSummary, VerificationSummary,
};
use ecl_core::xval;
use ecl_core::CoreError;
use ecl_exec::ExecOptions;
use ecl_telemetry::{Collector, Histogram, PrefixSink, RecordingSink};

use crate::SplitScenario;

/// Buckets of the sweep-level actuation-latency histogram.
const SWEEP_BUCKETS: usize = 64;

/// The splitmix64 finalizer: a bijective avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives scenario `index`'s PRNG seed from the sweep seed: element
/// `index` of the splitmix64 stream starting at `base`. Workers never
/// share PRNG state, so the derivation — not scheduling order — fixes
/// every random draw.
pub fn scenario_seed(base: u64, index: usize) -> u64 {
    splitmix64(base.wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Per-scenario PRNG over the splitmix64 stream of [`scenario_seed`].
#[derive(Debug, Clone)]
struct FleetRng {
    state: u64,
}

impl FleetRng {
    fn new(seed: u64) -> Self {
        FleetRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state.wrapping_sub(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform in `[0, 1)` (53-bit resolution).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)` by rejection sampling (no modulo bias).
    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next_u64();
            if x < zone {
                return (x % n) as usize;
            }
        }
    }
}

/// Fault-injection axes of a sweep (experiment E12-FAULT).
///
/// Each scenario draws one rate per fault class from these lists,
/// *after* its WCET and period draws, so all-zero axes leave historical
/// scenarios (and their report bytes) untouched.
#[derive(Debug, Clone)]
pub struct FaultAxes {
    /// Per-transmission frame-loss probabilities; each scenario draws one.
    pub frame_loss_rates: Vec<f64>,
    /// Per-period link-outage start probabilities; each scenario draws one.
    pub link_outage_rates: Vec<f64>,
    /// Per-period processor-dropout hazards; each scenario draws one.
    pub proc_dropout_rates: Vec<f64>,
    /// Retransmission budget per frame before the period's transfer drops.
    pub max_retries: u32,
    /// Length of a link-outage window, in periods.
    pub outage_periods: u32,
}

impl Default for FaultAxes {
    fn default() -> Self {
        FaultAxes {
            frame_loss_rates: vec![0.0],
            link_outage_rates: vec![0.0],
            proc_dropout_rates: vec![0.0],
            max_retries: 3,
            outage_periods: 2,
        }
    }
}

impl FaultAxes {
    /// `true` when no axis can produce a fault (the sweep is fault-free).
    pub fn is_zero(&self) -> bool {
        let all_zero = |v: &[f64]| v.iter().all(|&r| r == 0.0);
        all_zero(&self.frame_loss_rates)
            && all_zero(&self.link_outage_rates)
            && all_zero(&self.proc_dropout_rates)
    }
}

/// What a sweep varies and how large it is.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Sweep-level seed; scenario `i` uses [`scenario_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Number of scenarios.
    pub scenario_count: usize,
    /// Worker threads (clamped to at least 1). Must not affect results.
    pub workers: usize,
    /// Maximum fractional WCET inflation: each operation's WCET is scaled
    /// by a factor drawn uniformly from `[1, 1 + wcet_jitter]`.
    pub wcet_jitter: f64,
    /// Sampling-period scales; each scenario draws one uniformly.
    pub period_scales: Vec<f64>,
    /// Mapping policies, assigned round-robin by scenario index. A
    /// [`MappingPolicy::Random`] entry is re-seeded with the scenario
    /// seed.
    pub policies: Vec<MappingPolicy>,
    /// A scenario is robust when `cost / ideal cost <= cost_bound_ratio`.
    pub cost_bound_ratio: f64,
    /// Capture merged telemetry traces for the first `trace_scenarios`
    /// scenarios (they get `s<i>:`-prefixed tracks in the merged stream).
    pub trace_scenarios: usize,
    /// Fault-injection axes; the all-zero default keeps the sweep
    /// fault-free and its report byte-identical to pre-fault sweeps.
    pub faults: FaultAxes,
    /// Cross-validate every scenario: generate executives, execute them
    /// on the `ecl-exec` virtual machine (with the scenario's fault
    /// plan, if any) and compare the measured completion instants
    /// against the graph-of-delays prediction. Off by default; the
    /// report stays byte-identical when off.
    pub validate_executive: bool,
    /// Statically verify every scenario: run the `ecl-verify` passes over
    /// its schedule and check that the sound static `Ls`/`La` bounds
    /// dominate the measured latencies of the co-simulated run. Off by
    /// default; the report stays byte-identical when off.
    pub verify_static: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            base_seed: 0xec1_f1ee7,
            scenario_count: 64,
            workers: 1,
            wcet_jitter: 0.30,
            period_scales: vec![1.0, 1.25, 1.5],
            policies: vec![
                MappingPolicy::SchedulePressure,
                MappingPolicy::EarliestFinish,
            ],
            cost_bound_ratio: 1.5,
            trace_scenarios: 0,
            faults: FaultAxes::default(),
            validate_executive: false,
            verify_static: false,
        }
    }
}

/// A concrete perturbation of the baseline, fully determined by
/// `(config, index)` — deriving it never consults shared state.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index within the sweep.
    pub index: usize,
    /// The derived PRNG seed.
    pub seed: u64,
    /// Per-operation WCET scale factors, in [`ecl_aaa::OpId`] index order.
    pub wcet_factors: Vec<f64>,
    /// Sampling-period scale.
    pub period_scale: f64,
    /// Mapping policy for this scenario's adequation.
    pub policy: MappingPolicy,
    /// Per-transmission frame-loss probability of this scenario.
    pub frame_loss_rate: f64,
    /// Per-period link-outage start probability of this scenario.
    pub link_outage_rate: f64,
    /// Per-period processor-dropout hazard of this scenario.
    pub proc_dropout_rate: f64,
}

impl Scenario {
    /// Derives scenario `index` of a sweep over `base`.
    pub fn derive(config: &SweepConfig, base: &SplitScenario, index: usize) -> Scenario {
        let seed = scenario_seed(config.base_seed, index);
        let mut rng = FleetRng::new(seed);
        // Ops are visited in index order so draws are reproducible; the
        // timing table itself iterates in unspecified (HashMap) order.
        let wcet_factors: Vec<f64> = base
            .alg
            .ops()
            .map(|_| 1.0 + config.wcet_jitter * rng.next_f64())
            .collect();
        let period_scale = config.period_scales[rng.below(config.period_scales.len())];
        // Fault rates are drawn after the historical axes so that an
        // all-zero `FaultAxes` reproduces pre-fault scenario draws (and
        // hence report bytes) exactly.
        let axes = &config.faults;
        let frame_loss_rate = axes.frame_loss_rates[rng.below(axes.frame_loss_rates.len())];
        let link_outage_rate = axes.link_outage_rates[rng.below(axes.link_outage_rates.len())];
        let proc_dropout_rate = axes.proc_dropout_rates[rng.below(axes.proc_dropout_rates.len())];
        let mut policy = config.policies[index % config.policies.len()];
        if let MappingPolicy::Random { .. } = policy {
            policy = MappingPolicy::Random { seed };
        }
        Scenario {
            index,
            seed,
            wcet_factors,
            period_scale,
            policy,
            frame_loss_rate,
            link_outage_rate,
            proc_dropout_rate,
        }
    }

    /// `true` when this scenario injects at least one fault class.
    pub fn has_faults(&self) -> bool {
        self.frame_loss_rate > 0.0 || self.link_outage_rate > 0.0 || self.proc_dropout_rate > 0.0
    }

    /// The fault-injection configuration of this scenario: plan seed =
    /// scenario seed, budgets from the sweep axes.
    pub fn fault_config(&self, axes: &FaultAxes) -> FaultConfig {
        FaultConfig {
            seed: self.seed,
            frame_loss_rate: self.frame_loss_rate,
            max_retries: axes.max_retries,
            link_outage_rate: self.link_outage_rate,
            outage_periods: axes.outage_periods,
            proc_dropout_rate: self.proc_dropout_rate,
        }
    }

    /// The perturbed WCET table: every default and processor-specific
    /// entry scaled by its operation's factor (interdictions kept).
    pub fn jittered_db(&self, base: &SplitScenario) -> TimingDb {
        let scale = |t: TimeNs, f: f64| {
            TimeNs::from_nanos(((t.as_nanos() as f64 * f).round() as i64).max(1))
        };
        let mut db = base.db.clone();
        let mut defaults: Vec<_> = base.db.iter_defaults().collect();
        defaults.sort_by_key(|&(op, _)| op);
        for (op, t) in defaults {
            db.set_default(op, scale(t, self.wcet_factors[op.index()]));
        }
        let mut specific: Vec<_> = base.db.iter_specific().collect();
        specific.sort_by_key(|&(op, p, _)| (op, p));
        for (op, p, t) in specific {
            db.set(op, p, scale(t, self.wcet_factors[op.index()]));
        }
        db
    }

    /// One-line description used in report rows. Fault rates appear only
    /// when non-zero, keeping fault-free labels byte-identical to
    /// pre-fault sweeps.
    pub fn label(&self) -> String {
        let worst = self.wcet_factors.iter().fold(1.0f64, |acc, &f| acc.max(f));
        let mut s = format!(
            "wcet<=x{worst:.3} Ts x{:.2} {:?}",
            self.period_scale, self.policy
        );
        if self.has_faults() {
            s.push_str(&format!(
                " faults fl{:.3} ol{:.3} pd{:.4}",
                self.frame_loss_rate, self.link_outage_rate, self.proc_dropout_rate
            ));
        }
        s
    }
}

/// Everything a sweep returns: the deterministic summary plus the merged
/// latency histogram and (optionally) the merged telemetry stream.
#[derive(Debug)]
pub struct SweepOutput {
    /// Per-scenario rows and robustness statistics (deterministic bytes).
    pub summary: SweepSummary,
    /// Actuation latencies of *all* scenarios merged into one fixed-shape
    /// histogram (bound: twice the largest scaled period).
    pub actuation_hist: Histogram,
    /// Merged telemetry of the first `trace_scenarios` scenarios, tracks
    /// prefixed `s<i>:` so timestamps stay monotone per track.
    pub traces: RecordingSink,
}

/// Runs `f` over `0..count` on `workers` self-scheduling threads and
/// returns the results **in index order** — the pool pulls indices from a
/// shared counter (work stealing by self-scheduling), but completion
/// order never leaks into the output.
pub fn map_indexed<R, F>(count: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let r = f(i);
                slots.lock().expect("result slots")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots")
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

/// The sweep-level histogram bound: twice the largest scaled period, so
/// even overrunning actuations stay in range.
fn sweep_bound_ns(spec: &LoopSpec, config: &SweepConfig) -> i64 {
    let max_scale = config
        .period_scales
        .iter()
        .fold(1.0f64, |acc, &s| acc.max(s));
    (TimeNs::from_secs_f64(spec.ts * max_scale).as_nanos() * 2).max(1)
}

/// What one scenario contributes to the sweep fold: its report row, the
/// optional degradation twin delta, its latency histogram, its telemetry
/// sink, the optional `(is_exact, max divergence ns)` verdict of the
/// executive cross-validation, and the optional
/// `(errors, warnings, soundness margin ns)` yield of the static
/// verification (margin `None` under a drop-capable plan, whose retry
/// bounds are declaredly unsound).
type ScenarioYield = (
    ScenarioOutcome,
    Option<DegradationSummary>,
    Histogram,
    RecordingSink,
    Option<(bool, i64)>,
    Option<(usize, usize, Option<i64>)>,
);

/// Runs one scenario end to end: jitter → (cached) adequation →
/// graph-of-delays co-simulation → metrics. A scenario with fault rates
/// also runs its fault-free twin on the same schedule and returns the
/// degradation delta between the two. With
/// [`SweepConfig::validate_executive`] it additionally executes the
/// generated executives on the virtual machine and returns
/// `(is_exact, max divergence ns)` against the delay-graph prediction.
fn run_scenario(
    spec: &LoopSpec,
    base: &SplitScenario,
    config: &SweepConfig,
    cache: &ScheduleCache,
    index: usize,
) -> Result<ScenarioYield, CoreError> {
    let scenario = Scenario::derive(config, base, index);
    let db = scenario.jittered_db(base);
    let options = AdequationOptions {
        policy: scenario.policy,
    };
    let schedule = cache
        .get_or_compute(&base.alg, &base.arch, &db, options)
        .map_err(CoreError::from)?;

    let mut spec2 = spec.clone();
    spec2.ts = spec.ts * scenario.period_scale;
    // The delay-graph builder rejects makespan > period; a badly jittered
    // schedule stretches the period just enough (deterministically).
    let makespan_s = schedule.makespan().as_secs_f64();
    if makespan_s > spec2.ts {
        spec2.ts = makespan_s * 1.05;
    }

    let ideal = cosim::run_ideal(&spec2)?;
    let traced = index < config.trace_scenarios;
    let periods = (spec2.horizon / spec2.ts).floor().max(1.0) as u32;
    // The plan is a pure function of (config, schedule, arch, periods),
    // so the co-simulation and the virtual executive below are driven by
    // byte-identical fault fates.
    let plan = scenario
        .has_faults()
        .then(|| {
            FaultPlan::generate(
                &scenario.fault_config(&config.faults),
                &schedule,
                &base.arch,
                periods,
            )
        })
        .transpose()?;
    let (run, degradation, sink) = if let Some(plan) = &plan {
        // Faulty scenarios compare against a fault-free twin on the same
        // schedule; they never contribute telemetry traces (tracing the
        // degraded replay would double the sink for no new information).
        let baseline = cosim::run_scheduled(&spec2, &base.alg, &base.io, &schedule, &base.arch)?;
        let faulty = cosim::run_scheduled_faulty(
            &spec2,
            &base.alg,
            &base.io,
            &schedule,
            &base.arch,
            plan.clone(),
        )?;
        let degradation = DegradationSummary::from_runs(
            index,
            plan,
            &baseline,
            &faulty,
            config.cost_bound_ratio,
        )?;
        (faulty, Some(degradation), RecordingSink::default())
    } else if traced {
        let sink = PrefixSink::new(format!("s{index}:"), RecordingSink::default());
        let mut tel = Collector::new(sink);
        let run = cosim::run_scheduled_traced(
            &spec2, &base.alg, &base.io, &schedule, &base.arch, &mut tel,
        )?;
        (run, None, tel.into_sink().into_inner())
    } else {
        let run = cosim::run_scheduled(&spec2, &base.alg, &base.io, &schedule, &base.arch)?;
        (run, None, RecordingSink::default())
    };

    // Forced rendezvous under faults legitimately pushes sampling past
    // its period, so degraded runs are measured leniently.
    let report = if scenario.has_faults() {
        run.latency_report_lenient()?
    } else {
        run.latency_report()?
    };
    let mut hist = Histogram::new(sweep_bound_ns(spec, config), SWEEP_BUCKETS);
    let mut worst = 0i64;
    for series in &report.actuation {
        for &v in series.values() {
            hist.record(v.as_nanos());
            worst = worst.max(v.as_nanos());
        }
    }
    let outcome = ScenarioOutcome {
        index,
        seed: scenario.seed,
        label: scenario.label(),
        cost: run.cost,
        cost_ratio: run.cost / ideal.cost,
        makespan_ns: schedule.makespan().as_nanos(),
        worst_actuation_ns: worst,
        overruns: report.total_overruns(),
    };

    // Measured-vs-modeled cross-validation: execute the generated
    // executives on the virtual machine under the *same* fault plan the
    // co-simulation used, and diff completion instants op by op.
    let validation = if config.validate_executive {
        let generated =
            codegen::generate(&schedule, &base.alg, &base.arch).map_err(CoreError::from)?;
        let period = TimeNs::from_secs_f64(spec2.ts);
        let opts = ExecOptions {
            period,
            periods,
            faults: plan.as_ref(),
        };
        let measured = ecl_exec::run(&generated, &base.arch, &schedule, &opts).map_err(|e| {
            CoreError::InvalidInput {
                reason: format!("virtual executive of scenario {index}: {e}"),
            }
        })?;
        let predicted = xval::predict_op_completions(
            &base.alg,
            &base.arch,
            &schedule,
            period,
            periods,
            plan.as_ref(),
        )?;
        let report = xval::validate_schedule(&measured.timeline(), &predicted, &base.alg)?;
        Some((report.is_exact(), report.max_divergence_ns()))
    } else {
        None
    };

    // Static verification: run every `ecl-verify` pass over the scenario's
    // schedule, then check soundness — the static `Ls`/`La` bounds must
    // dominate every latency the co-simulation measured.
    let verification = if config.verify_static {
        let period = TimeNs::from_secs_f64(spec2.ts);
        let vreport =
            ecl_verify::verify(&base.alg, &base.arch, &db, &schedule, period, plan.as_ref())
                .map_err(CoreError::from)?;
        let bounds = vreport
            .bounds
            .as_ref()
            .expect("verify always derives bounds");
        let margin = if bounds.drop_capable {
            // Deadline forcing takes over; the retry bounds are unsound
            // by declaration, so the scenario contributes no margin.
            None
        } else {
            let mut margin: Option<i64> = None;
            let sensors = base.io.sensors.iter().zip(&report.sampling);
            let actuators = base.io.actuators.iter().zip(&report.actuation);
            for (op, series) in sensors.chain(actuators) {
                if let Some(b) = bounds.bound_for(*op) {
                    for &v in series.values() {
                        let m = b.faulty.as_nanos() - v.as_nanos();
                        margin = Some(margin.map_or(m, |cur| cur.min(m)));
                    }
                }
            }
            margin
        };
        Some((
            vreport.count(ecl_verify::Severity::Error),
            vreport.count(ecl_verify::Severity::Warn),
            margin,
        ))
    } else {
        None
    };
    Ok((outcome, degradation, hist, sink, validation, verification))
}

/// Runs the whole sweep on `config.workers` threads.
///
/// The returned [`SweepOutput`] is byte-identical for any worker count:
/// scenario seeds depend only on `(base_seed, index)` and aggregation
/// folds in index order.
///
/// # Errors
///
/// Returns the lowest-index scenario failure, if any (also independent of
/// worker count).
pub fn run_sweep(
    spec: &LoopSpec,
    base: &SplitScenario,
    config: &SweepConfig,
) -> Result<SweepOutput, CoreError> {
    let cache = ScheduleCache::new();
    let results = map_indexed(config.scenario_count, config.workers, |i| {
        run_scenario(spec, base, config, &cache, i)
    });

    let mut scenarios = Vec::with_capacity(config.scenario_count);
    let mut degradations = Vec::new();
    let mut merged = Histogram::new(sweep_bound_ns(spec, config), SWEEP_BUCKETS);
    let mut traces = RecordingSink::default();
    let mut validation: Option<ValidationSummary> =
        config.validate_executive.then_some(ValidationSummary {
            validated: 0,
            exact: 0,
            max_divergence_ns: 0,
        });
    let mut verification: Option<VerificationSummary> =
        config.verify_static.then_some(VerificationSummary {
            verified: 0,
            errors: 0,
            warnings: 0,
            worst_margin_ns: i64::MAX,
        });
    for result in results {
        let (outcome, degradation, hist, sink, validated, verified) = result?;
        scenarios.push(outcome);
        degradations.extend(degradation);
        merged.merge(&hist);
        traces.absorb(sink);
        if let (Some(v), Some((exact, max_div))) = (validation.as_mut(), validated) {
            v.validated += 1;
            if exact {
                v.exact += 1;
            }
            v.max_divergence_ns = v.max_divergence_ns.max(max_div);
        }
        if let (Some(v), Some((errors, warnings, margin))) = (verification.as_mut(), verified) {
            v.verified += 1;
            v.errors += errors;
            v.warnings += warnings;
            if let Some(m) = margin {
                v.worst_margin_ns = v.worst_margin_ns.min(m);
            }
        }
    }
    if let Some(v) = verification.as_mut() {
        if v.worst_margin_ns == i64::MAX {
            v.worst_margin_ns = 0;
        }
    }
    Ok(SweepOutput {
        summary: SweepSummary {
            scenarios,
            cost_bound_ratio: config.cost_bound_ratio,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            degradations,
            validation,
            verification,
        },
        actuation_hist: merged,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dc_motor_loop, split_scenario};
    use proptest::prelude::*;

    fn small_base() -> SplitScenario {
        split_scenario(
            2,
            1,
            TimeNs::from_micros(200),
            TimeNs::from_micros(50),
            TimeNs::from_micros(500),
        )
        .unwrap()
    }

    fn small_config(workers: usize) -> SweepConfig {
        SweepConfig {
            scenario_count: 8,
            workers,
            trace_scenarios: 2,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn seeds_are_index_deterministic_and_distinct() {
        let a: Vec<u64> = (0..16).map(|i| scenario_seed(42, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| scenario_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "seeds must be distinct");
        assert_ne!(scenario_seed(42, 0), scenario_seed(43, 0));
    }

    #[test]
    fn map_indexed_orders_results_for_any_worker_count() {
        for workers in [1, 2, 5, 64] {
            let out = map_indexed(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn scenario_derivation_is_pure() {
        let base = small_base();
        let config = small_config(1);
        let a = Scenario::derive(&config, &base, 3);
        let b = Scenario::derive(&config, &base, 3);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.wcet_factors, b.wcet_factors);
        assert_eq!(a.period_scale, b.period_scale);
        assert_eq!(a.policy, b.policy);
        for &f in &a.wcet_factors {
            assert!((1.0..=1.0 + config.wcet_jitter).contains(&f));
        }
        // The jittered table never shrinks a WCET.
        let db = a.jittered_db(&base);
        let base_defaults: std::collections::HashMap<_, _> = base.db.iter_defaults().collect();
        for (op, t) in db.iter_defaults() {
            assert!(t >= base_defaults[&op], "jitter must only inflate WCETs");
        }
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let serial = run_sweep(&spec, &base, &small_config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &small_config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.actuation_hist, parallel.actuation_hist);
        assert_eq!(serial.traces, parallel.traces);
        // Sanity: the sweep actually ran and measured something.
        assert_eq!(serial.summary.scenarios.len(), 8);
        assert!(serial.actuation_hist.count() > 0);
        assert!(serial
            .summary
            .scenarios
            .iter()
            .all(|s| s.cost_ratio.is_finite() && s.cost_ratio > 0.0));
        // Round-robin policies + repeated tables mean the cache must see
        // every lookup and deduplicate at least nothing-or-more.
        let s = &serial.summary;
        assert_eq!(
            s.cache_hits + s.cache_misses,
            s.scenarios.len() as u64,
            "one cache lookup per scenario"
        );
        // Two traced scenarios produced namespaced tracks.
        let rendered = serial.traces.render();
        assert!(rendered.contains("s0:"), "missing s0 prefix:\n{rendered}");
        assert!(rendered.contains("s1:"), "missing s1 prefix:\n{rendered}");
        // The all-zero default fault axes leave no degradation rows and
        // no fault section in either artifact.
        assert!(serial.summary.degradations.is_empty());
        assert!(!serial.summary.render().contains("Fault degradation"));
        assert!(!serial.summary.to_json().contains("degradations"));
    }

    fn faulty_config(workers: usize) -> SweepConfig {
        SweepConfig {
            scenario_count: 6,
            workers,
            faults: FaultAxes {
                frame_loss_rates: vec![0.25, 0.5],
                link_outage_rates: vec![0.0, 0.2],
                proc_dropout_rates: vec![0.0, 0.02],
                ..FaultAxes::default()
            },
            ..SweepConfig::default()
        }
    }

    #[test]
    fn fault_sweep_is_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let serial = run_sweep(&spec, &base, &faulty_config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &faulty_config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.render(), parallel.summary.render());
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        // Every scenario draws a non-zero frame-loss rate, so every row
        // has a degradation twin, in index order.
        assert_eq!(serial.summary.degradations.len(), 6);
        let indices: Vec<usize> = serial
            .summary
            .degradations
            .iter()
            .map(|d| d.index)
            .collect();
        assert_eq!(indices, (0..6).collect::<Vec<_>>());
        assert!(serial.summary.render().contains("### Fault degradation"));
        assert!(serial.summary.survivable_fraction().is_some());
        // The faults actually bit: some scenario lost frames or windows.
        let injected_total: u64 = serial
            .summary
            .degradations
            .iter()
            .map(|d| d.injected.total())
            .sum();
        assert!(injected_total > 0, "fault axes injected nothing");
    }

    #[test]
    fn validated_sweep_is_exact_and_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            validate_executive: true,
            ..small_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        let v = serial.summary.validation.expect("validation was requested");
        assert_eq!(v.validated, 8, "every scenario must be validated");
        assert_eq!(
            v.exact, 8,
            "virtual executive diverged from the graph of delays"
        );
        assert_eq!(v.max_divergence_ns, 0);
        assert!(serial
            .summary
            .render()
            .contains("### Executive cross-validation"));
        assert!(serial.summary.to_json().contains("\"validation\""));
        // The section is strictly additive: turning validation off keeps
        // the summary free of it (byte-compat is proven in ecl-core).
        let off = run_sweep(&spec, &base, &small_config(1)).unwrap();
        assert!(off.summary.validation.is_none());
        assert_eq!(off.summary.scenarios, serial.summary.scenarios);
    }

    #[test]
    fn verified_sweep_bounds_dominate_and_worker_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            verify_static: true,
            ..small_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        let v = serial
            .summary
            .verification
            .expect("verification was requested");
        assert_eq!(v.verified, 8, "every scenario must be verified");
        assert_eq!(v.errors, 0, "static verifier flagged a clean sweep");
        assert!(
            v.worst_margin_ns >= 0,
            "a measured latency exceeded its static bound"
        );
        assert!(serial.summary.render().contains("### Static verification"));
        assert!(serial.summary.to_json().contains("\"verification\""));
        // The section is strictly additive: off by default.
        let off = run_sweep(&spec, &base, &small_config(1)).unwrap();
        assert!(off.summary.verification.is_none());
        assert_eq!(off.summary.scenarios, serial.summary.scenarios);
    }

    #[test]
    fn verified_fault_sweep_counts_margins_soundly() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            verify_static: true,
            ..faulty_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        let v = serial
            .summary
            .verification
            .expect("verification was requested");
        assert_eq!(v.verified, 6);
        assert_eq!(v.errors, 0, "faulty scenarios must still verify cleanly");
        // Drop-capable scenarios contribute no margin; whatever margins
        // the retries-only scenarios contributed must be sound.
        assert!(
            v.worst_margin_ns >= 0,
            "a measured latency exceeded its fault-aware static bound"
        );
    }

    #[test]
    fn validated_fault_sweep_is_worker_count_invariant() {
        let base = small_base();
        let spec = dc_motor_loop(0.3).unwrap();
        let config = |workers| SweepConfig {
            validate_executive: true,
            ..faulty_config(workers)
        };
        let serial = run_sweep(&spec, &base, &config(1)).unwrap();
        let parallel = run_sweep(&spec, &base, &config(4)).unwrap();
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        let v = serial.summary.validation.expect("validation was requested");
        assert_eq!(v.validated, 6);
        // Divergence, if any, is bounded by the horizon; exactness under
        // controlled fault plans is asserted by experiment E13-EXEC.
        assert!(v.exact <= v.validated);
        assert!(v.max_divergence_ns >= 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 4 })]

        /// The plan a scenario ends up with must not depend on how many
        /// workers computed the sweep — only on `(base_seed, index)` and
        /// the schedule content. Zero-rate plans stay trivial for every
        /// seed, which is what keeps fault-free sweeps byte-identical to
        /// pre-fault ones.
        #[test]
        fn fault_plans_are_worker_count_invariant(base_seed in 0u64..(1u64 << 48)) {
            let base = small_base();
            let mut config = faulty_config(1);
            config.base_seed = base_seed;
            config.scenario_count = 5;
            let digests_on = |workers: usize| -> Vec<u64> {
                let cache = ScheduleCache::new();
                map_indexed(config.scenario_count, workers, |i| {
                    let scenario = Scenario::derive(&config, &base, i);
                    let db = scenario.jittered_db(&base);
                    let options = AdequationOptions {
                        policy: scenario.policy,
                    };
                    let schedule = cache
                        .get_or_compute(&base.alg, &base.arch, &db, options)
                        .unwrap();
                    FaultPlan::generate(
                        &scenario.fault_config(&config.faults),
                        &schedule,
                        &base.arch,
                        32,
                    )
                    .unwrap()
                    .digest()
                })
            };
            prop_assert_eq!(digests_on(1), digests_on(4));

            let zero = Scenario {
                frame_loss_rate: 0.0,
                link_outage_rate: 0.0,
                proc_dropout_rate: 0.0,
                ..Scenario::derive(&config, &base, 0)
            };
            let db = zero.jittered_db(&base);
            let schedule = ScheduleCache::new()
                .get_or_compute(
                    &base.alg,
                    &base.arch,
                    &db,
                    AdequationOptions {
                        policy: zero.policy,
                    },
                )
                .unwrap();
            let plan = FaultPlan::generate(
                &zero.fault_config(&config.faults),
                &schedule,
                &base.arch,
                32,
            )
            .unwrap();
            prop_assert!(plan.is_trivial());
        }
    }
}
