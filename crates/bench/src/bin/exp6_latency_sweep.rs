//! E6 — control cost vs input–output latency.
//!
//! Sweeps the computation WCET so the actuation latency covers 5%…85% of
//! the sampling period, for the DC motor and the inverted pendulum, and
//! prints the quadratic-cost degradation curve — the analysis of Cervin
//! et al. (IEEE CSM 2003) that the paper's §2 builds on. Expected shape:
//! monotone degradation, far steeper for the open-loop-unstable pendulum.
//!
//! The sweep points are independent, so they run on the fleet worker
//! pool ([`ecl_bench::fleet::map_indexed`]); results come back in point
//! order, so the table is identical for any worker count.

use ecl_aaa::{adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb};
use ecl_bench::fleet::map_indexed;
use ecl_bench::{lqr_loop, table};
use ecl_control::plants;
use ecl_core::cosim::{self, LoopSpec};
use ecl_core::translate::IoMap;

const FRACTIONS: [f64; 6] = [0.05, 0.15, 0.30, 0.50, 0.70, 0.85];

/// Builds a single-ECU law whose compute stage eats `frac` of the period.
fn single_proc_schedule(
    n_inputs: usize,
    period: TimeNs,
    frac: f64,
) -> (AlgorithmGraph, IoMap, ArchitectureGraph, ecl_aaa::Schedule) {
    let law = ecl_core::translate::ControlLawSpec::monolithic("law", n_inputs, 1);
    let (alg, io) = law.to_algorithm().expect("valid");
    let mut arch = ArchitectureGraph::new();
    arch.add_processor("ecu", "arm");
    let io_wcet = TimeNs::from_nanos((period.as_nanos() as f64 * 0.01) as i64);
    let total_io = io_wcet * (n_inputs as i64 + 1);
    let compute = TimeNs::from_nanos((period.as_nanos() as f64 * frac) as i64) - total_io;
    let mut db = TimingDb::new();
    for &s in io.sensors.iter().chain(&io.actuators) {
        db.set_default(s, io_wcet);
    }
    db.set_default(io.stages[0], compute.max(TimeNs::from_nanos(1)));
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");
    (alg, io, arch, schedule)
}

/// One sweep point: co-simulate `spec` with `frac` of the period spent
/// computing, and render the table row.
fn point(name: &str, spec: &LoopSpec, n_inputs: usize, ideal_cost: f64, frac: f64) -> Vec<String> {
    let period = TimeNs::from_secs_f64(spec.ts);
    let (alg, io, arch, schedule) = single_proc_schedule(n_inputs, period, frac);
    let run = cosim::run_scheduled(spec, &alg, &io, &schedule, &arch).expect("cosim ok");
    let rep = run.latency_report().expect("aligned");
    vec![
        name.into(),
        format!("{:.0}%", frac * 100.0),
        format!("{}", rep.mean_actuation()),
        format!("{ideal_cost:.6}"),
        format!("{:.6}", run.cost),
        format!("{:+.1}%", (run.cost / ideal_cost - 1.0) * 100.0),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E6 — quadratic cost vs input-output latency (fraction of Ts)\n");

    let motor = plants::dc_motor();
    let spec_motor = lqr_loop(motor.sys, motor.ts, vec![1.0, 0.0], 1.5)?;
    let pend = plants::inverted_pendulum();
    let spec_pend = lqr_loop(pend.sys, pend.ts, vec![0.0, 0.0, 0.1, 0.0], 3.0)?;

    let plants: [(&str, &LoopSpec, usize, f64); 2] = [
        (
            "dc-motor",
            &spec_motor,
            2,
            cosim::run_ideal(&spec_motor)?.cost,
        ),
        (
            "pendulum",
            &spec_pend,
            4,
            cosim::run_ideal(&spec_pend)?.cost,
        ),
    ];

    // All (plant × fraction) points on the fleet pool, ordered output.
    let rows = map_indexed(plants.len() * FRACTIONS.len(), 4, |i| {
        let (name, spec, n_inputs, ideal_cost) = plants[i / FRACTIONS.len()];
        point(
            name,
            spec,
            n_inputs,
            ideal_cost,
            FRACTIONS[i % FRACTIONS.len()],
        )
    });

    println!(
        "{}",
        table(
            &[
                "plant",
                "latency/Ts",
                "mean La",
                "ideal cost",
                "cost",
                "degradation"
            ],
            &rows
        )
    );
    println!("expected shape: monotone degradation; much steeper for the");
    println!("open-loop-unstable pendulum than for the damped motor.");
    Ok(())
}
