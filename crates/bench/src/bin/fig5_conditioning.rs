//! F5 — paper Fig. 5: conditioning translation.
//!
//! An `if..then..else` whose branches take 0.5 ms vs 2.5 ms is routed
//! through an Event Select driven by a condition mapping. The experiment
//! alternates the branch every period and prints the resulting completion
//! instants — the temporal jitter on downstream I/O operations that the
//! paper identifies as a performance-degradation factor.

use ecl_aaa::{adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb};
use ecl_bench::table;
use ecl_blocks::{Constant, Scope, Sine};
use ecl_core::delays::{self, ConditionSource, DelayGraphConfig};
use ecl_sim::{Model, SimOptions, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut alg = AlgorithmGraph::new();
    let cond = alg.add_function("cond_eval");
    let then_b = alg.add_function("then_branch");
    let else_b = alg.add_function("else_branch");
    let out = alg.add_actuator("output");
    alg.set_condition(then_b, cond, 0)?;
    alg.set_condition(else_b, cond, 1)?;
    alg.add_edge(then_b, out, 1)?;
    alg.add_edge(else_b, out, 1)?;
    let mut arch = ArchitectureGraph::new();
    arch.add_processor("p0", "arm");
    let mut db = TimingDb::new();
    db.set_default(cond, TimeNs::from_micros(100));
    db.set_default(then_b, TimeNs::from_micros(500));
    db.set_default(else_b, TimeNs::from_micros(2500));
    db.set_default(out, TimeNs::from_micros(100));
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;

    let period = TimeNs::from_millis(10);
    let mut model = Model::new();
    // Alternate branch every period: a sinusoid at half the sampling
    // frequency flips sign at each sample.
    let osc = model.add_block(
        "mode",
        Sine::new(1.0, 1.0 / (2.0 * period.as_secs_f64())).with_phase(std::f64::consts::FRAC_PI_4),
    );
    let mut cfg = DelayGraphConfig::default();
    cfg.condition_sources.insert(
        cond,
        ConditionSource {
            block: osc,
            output: 0,
            mapping: Box::new(|v| usize::from(v < 0.0)),
        },
    );
    let dg = delays::build(&mut model, &alg, &arch, &schedule, period, cfg)?;
    let c = model.add_block("c", Constant::new(0.0));
    let sc = model.add_block("done_output", Scope::new());
    model.connect(c, 0, sc, 0)?;
    dg.activate_on_completion(&mut model, out, sc, 0)?;
    let mut sim = Simulator::new(model, SimOptions::default())?;
    let r = sim.run(period * 8 - TimeNs::from_nanos(1))?;

    println!("F5 — conditioning: branch-dependent completion instants");
    println!(
        "branches: then = 0.5 ms, else = 2.5 ms (schedule budgets both:\n{})",
        schedule.render(&alg, &arch)
    );

    let acts = r.activation_times(sc, Some(0));
    let mut rows = Vec::new();
    for (k, &t) in acts.iter().enumerate() {
        let lat = t - period * k as i64;
        let branch = if lat < TimeNs::from_millis(1) {
            "then"
        } else {
            "else"
        };
        rows.push(vec![
            k.to_string(),
            branch.into(),
            format!("{t}"),
            format!("{lat}"),
        ]);
    }
    println!(
        "{}",
        table(&["k", "branch", "output instant", "La(k)"], &rows)
    );

    let min = acts
        .iter()
        .enumerate()
        .map(|(k, &t)| t - period * k as i64)
        .min()
        .expect("non-empty");
    let max = acts
        .iter()
        .enumerate()
        .map(|(k, &t)| t - period * k as i64)
        .max()
        .expect("non-empty");
    println!("actuation jitter (max - min) = {}", max - min);
    Ok(())
}
