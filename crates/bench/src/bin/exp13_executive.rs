//! E13-EXEC — the concurrent virtual executive cross-validated against
//! the graph of delays.
//!
//! The paper's graph of delays *predicts* the instants a distributed
//! implementation samples and actuates at; the `ecl-exec` virtual
//! machine *measures* them, by actually running the generated
//! executives — one thread per ECU, rendezvous channels per bus — on a
//! virtual clock. This experiment diffs the two on the quarter-car
//! case study of E10 (3 ECUs on one CAN bus) and demands **zero
//! divergence**, twice:
//!
//! * nominally, over 60 control periods;
//! * under a non-trivial fault plan (frame losses healed by bounded
//!   retransmission), over the same 60 periods, with the *same* plan
//!   driving the VM's channels and the delay graph's `FaultyDelay`
//!   blocks.
//!
//! A fleet sweep with `validate_executive` then repeats the diff over
//! perturbed DC-motor implementations, and the usual worker-invariance
//! gate applies: `ECL_FLEET_WORKERS=<n>` runs the sweep on exactly `n`
//! workers and CI diffs `results/BENCH_exp13.json` across counts, so
//! the artifact carries no wall-clock content. Without the variable,
//! both counts run in-process and the binary asserts byte identity.

use ecl_aaa::{adequation, codegen, AdequationOptions, ArchitectureGraph, Schedule, TimeNs};
use ecl_bench::fleet::{run_sweep, workers_from_env, FaultAxes, SweepConfig, SweepOutput};
use ecl_bench::{dc_motor_loop, split_scenario, write_result};
use ecl_control::plants;
use ecl_core::faults::{CommFault, FaultConfig, FaultPlan};
use ecl_core::translate::{uniform_timing, ControlLawSpec};
use ecl_core::xval;
use ecl_exec::ExecOptions;

/// How many control periods the executives run for (>= 50 per the
/// experiment's acceptance bar).
const PERIODS: u32 = 60;

/// The E10 quarter-car deployment: suspension law on 3 ECUs sharing a
/// CAN bus, with placement interdictions pinning I/O to its ECU.
fn quarter_car_case() -> Result<
    (ecl_aaa::AlgorithmGraph, ArchitectureGraph, Schedule, TimeNs),
    Box<dyn std::error::Error>,
> {
    let plant = plants::quarter_car();
    let law = ControlLawSpec::filtered("susp", 4, 1).with_data_units(8);
    let (alg, io) = law.to_algorithm()?;

    let mut arch = ArchitectureGraph::new();
    let wheel_ecu = arch.add_processor("wheel_ecu", "cortex-m");
    let body_ecu = arch.add_processor("body_ecu", "cortex-m");
    let control_ecu = arch.add_processor("control_ecu", "cortex-a");
    arch.add_bus(
        "can",
        &[wheel_ecu, body_ecu, control_ecu],
        TimeNs::from_micros(120),
        TimeNs::from_micros(8),
    )?;

    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(80), TimeNs::from_micros(600));
    for &s in &[io.sensors[0], io.sensors[2], io.sensors[3]] {
        db.forbid(s, body_ecu);
        db.forbid(s, control_ecu);
    }
    db.forbid(io.sensors[1], wheel_ecu);
    db.forbid(io.sensors[1], control_ecu);
    let step = *io.stages.last().expect("law has stages");
    db.forbid(step, wheel_ecu);
    db.forbid(step, body_ecu);
    db.forbid(io.actuators[0], body_ecu);
    db.forbid(io.actuators[0], control_ecu);

    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
    Ok((alg, arch, schedule, TimeNs::from_secs_f64(plant.ts)))
}

/// Scans fault-plan seeds for a retries-only plan: at least one
/// retransmission, no dropped transfer, no dead processor. Such a plan
/// perturbs every downstream instant (retry cost is non-zero on the
/// CAN bus) while staying inside the regime both models define
/// identically.
fn retries_only_plan(
    schedule: &Schedule,
    arch: &ArchitectureGraph,
) -> Result<(u64, FaultPlan, u32), Box<dyn std::error::Error>> {
    for seed in 0..4096u64 {
        let config = FaultConfig {
            seed,
            frame_loss_rate: 0.05,
            max_retries: 3,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&config, schedule, arch, PERIODS)?;
        let n_procs = arch.processors().count();
        if (0..n_procs).any(|p| plan.proc_dead_from(p).is_some()) {
            continue;
        }
        let mut retries = 0u32;
        let mut dropped = false;
        for i in 0..schedule.comms().len() {
            for k in 0..PERIODS {
                match plan.comm_fault(i, k) {
                    CommFault::Ok => {}
                    CommFault::Retry(r) => retries += r,
                    CommFault::Drop => dropped = true,
                }
            }
        }
        if !dropped && retries > 0 {
            return Ok((seed, plan, retries));
        }
    }
    Err("no retries-only fault plan in 4096 seeds".into())
}

/// Runs the generated executives on the VM and diffs the measured
/// completion instants against the delay-graph prediction.
fn cross_validate(
    alg: &ecl_aaa::AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    period: TimeNs,
    faults: Option<&FaultPlan>,
) -> Result<xval::ValidationReport, Box<dyn std::error::Error>> {
    let generated = codegen::generate(schedule, alg, arch)?;
    assert!(
        codegen::check_deadlock_free(&generated.executives).is_free(),
        "quarter-car executives must be deadlock-free"
    );
    let opts = ExecOptions {
        period,
        periods: PERIODS,
        faults,
    };
    let measured = ecl_exec::run(&generated, arch, schedule, &opts)?;
    let predicted = xval::predict_op_completions(alg, arch, schedule, period, PERIODS, faults)?;
    Ok(xval::validate_schedule(
        &measured.timeline(),
        &predicted,
        alg,
    )?)
}

fn sweep_config(workers: usize) -> SweepConfig {
    SweepConfig {
        scenario_count: 16,
        workers,
        validate_executive: true,
        faults: FaultAxes {
            frame_loss_rates: vec![0.0, 0.10],
            link_outage_rates: vec![0.0, 0.15],
            proc_dropout_rates: vec![0.0, 0.01],
            ..FaultAxes::default()
        },
        ..SweepConfig::default()
    }
}

fn sweep(workers: usize) -> Result<SweepOutput, Box<dyn std::error::Error>> {
    let base = split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )?;
    let spec = dc_motor_loop(0.3)?;
    Ok(run_sweep(&spec, &base, &sweep_config(workers))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E13-EXEC — virtual executive vs graph of delays ({PERIODS} periods)\n");

    let (alg, arch, schedule, period) = quarter_car_case()?;

    // Gate 1: nominal execution measures exactly the modeled instants.
    let nominal = cross_validate(&alg, &arch, &schedule, period, None)?;
    println!("== nominal cross-validation ==\n{}", nominal.render());
    assert!(
        nominal.is_exact(),
        "nominal VM run diverged from the graph of delays:\n{}",
        nominal.render()
    );

    // Gate 2: the same fault plan drives both models to the same instants.
    let (seed, plan, retries) = retries_only_plan(&schedule, &arch)?;
    println!("fault plan: seed {seed}, {retries} retransmission(s), no drop, no dead ECU\n");
    let faulty = cross_validate(&alg, &arch, &schedule, period, Some(&plan))?;
    println!("== faulty cross-validation ==\n{}", faulty.render());
    assert!(
        faulty.is_exact(),
        "faulty VM run diverged from the graph of delays:\n{}",
        faulty.render()
    );

    // Gate 3: worker invariance of the self-validating fleet sweep.
    let summary = match workers_from_env()? {
        Some(workers) => {
            println!("validated sweep on {workers} worker(s) (ECL_FLEET_WORKERS)");
            sweep(workers)?.summary
        }
        None => {
            let serial = sweep(1)?;
            let parallel = sweep(4)?;
            assert!(
                serial.summary.render() == parallel.summary.render()
                    && serial.summary.to_json() == parallel.summary.to_json(),
                "1-worker and 4-worker validated sweeps must produce identical bytes"
            );
            println!("1-worker vs 4-worker validated sweep: byte-identical");
            serial.summary
        }
    };
    let validation = summary
        .validation
        .expect("sweep ran with validate_executive");
    println!(
        "sweep validation: {} scenarios, {} exact, max divergence {} ns\n",
        validation.validated, validation.exact, validation.max_divergence_ns
    );

    let md = format!(
        "E13-EXEC — virtual executive vs graph of delays\n\n\
         == nominal cross-validation ==\n{}\n\
         == faulty cross-validation (seed {seed}, {retries} retransmissions) ==\n{}\n\
         == validated fleet sweep ==\n{}",
        nominal.render(),
        faulty.render(),
        summary.render()
    );
    let report_path = write_result("exp13_executive.txt", &md)?;

    // The machine-readable artifact: wall-clock-free and worker-count
    // free, so CI can diff the bytes across ECL_FLEET_WORKERS values.
    let bench = format!(
        "{{\"experiment\":\"exp13_executive\",\
         \"periods\":{PERIODS},\
         \"nominal_exact\":{},\
         \"fault_seed\":{seed},\
         \"fault_retries\":{retries},\
         \"faulty_exact\":{},\
         \"sweep_validated\":{},\
         \"sweep_exact\":{},\
         \"sweep_max_divergence_ns\":{}}}\n",
        nominal.is_exact(),
        faulty.is_exact(),
        validation.validated,
        validation.exact,
        validation.max_divergence_ns,
    );
    let bench_path = write_result("BENCH_exp13.json", &bench)?;
    println!(
        "wrote {} and {}",
        report_path.display(),
        bench_path.display()
    );
    Ok(())
}
