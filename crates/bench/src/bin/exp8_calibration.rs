//! E8 — the methodology's payoff: ideal vs implemented vs calibrated.
//!
//! Runs the full lifecycle (design → adequation → co-simulate → calibrate)
//! on three plants over the same 2-ECU target and reports the quadratic
//! costs. The claim being reproduced: co-simulating the implementation
//! early and calibrating the law against the measured latency recovers
//! most of the degradation *without* iterating through a physical
//! integration phase.

use ecl_aaa::{AdequationOptions, TimeNs};
use ecl_bench::{split_scenario, table};
use ecl_control::plants::{self, Plant};
use ecl_core::cosim::DisturbanceKind;
use ecl_core::lifecycle::{self, LifecycleInputs};
use ecl_linalg::Mat;

fn run_case(plant: &Plant, x0: Vec<f64>, horizon: f64) -> Vec<String> {
    let n = plant.sys.state_dim();
    // Latency budget scaled to the plant's period: ~55% of Ts.
    let period = TimeNs::from_secs_f64(plant.ts);
    let bus = TimeNs::from_nanos((period.as_nanos() as f64 * 0.08) as i64);
    let compute = TimeNs::from_nanos((period.as_nanos() as f64 * 0.25) as i64);
    let io_wcet = TimeNs::from_nanos((period.as_nanos() as f64 * 0.005) as i64);
    let scenario = split_scenario(n, 1, bus, io_wcet, compute).expect("valid scenario");

    let mut q = Mat::identity(n);
    q[(0, 0)] = 10.0;
    let inputs = LifecycleInputs {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0,
        ts: plant.ts,
        horizon,
        lqr_q: q,
        lqr_r: Mat::diag(&[1e-3]),
        q_weight: 1.0,
        r_weight: 1e-3,
        law: scenario.law.clone(),
        arch: scenario.arch,
        db: scenario.db,
        adequation: AdequationOptions::default(),
        disturbance: DisturbanceKind::None,
    };
    let rep = lifecycle::run(&inputs).expect("lifecycle ok");
    vec![
        plant.name.into(),
        format!("{}", rep.latency.mean_actuation()),
        format!("{:.6}", rep.ideal.cost),
        format!("{:.6}", rep.implemented.cost),
        format!("{:.6}", rep.calibrated.cost),
        format!("{:+.1}%", rep.degradation() * 100.0),
        format!("{:.0}%", rep.calibration_recovery() * 100.0),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E8 — lifecycle payoff: ideal vs implemented vs calibrated\n");
    let rows = vec![
        run_case(&plants::dc_motor(), vec![1.0, 0.0], 1.5),
        run_case(&plants::inverted_pendulum(), vec![0.0, 0.0, 0.1, 0.0], 3.0),
        run_case(&plants::cruise_control(), vec![5.0], 20.0),
    ];
    println!(
        "{}",
        table(
            &[
                "plant",
                "mean La",
                "ideal",
                "implemented",
                "calibrated",
                "degradation",
                "recovered"
            ],
            &rows
        )
    );
    println!("\nexpected shape: implemented > calibrated >= ideal on every");
    println!("plant; the delay-aware redesign recovers most of the loss.");
    Ok(())
}
