//! E11-MC — Monte-Carlo robustness sweep on the scenario fleet.
//!
//! Runs ≥64 perturbed implementations of the DC-motor loop (per-op WCET
//! jitter, mapping policy, sampling-period scale) through the full
//! adequation → graph-of-delays → co-simulation pipeline, twice: once on
//! 1 worker and once on 4. The two sweep reports must be byte-identical
//! — that diff *is* the determinism check — and the wall-clock of both
//! runs plus the schedule-cache statistics land in
//! `results/BENCH_exp11.json`.
//!
//! Wall-clock speedup is hardware-dependent (on a single-core container
//! the 4-worker run cannot beat the serial one); the report bytes are
//! not.

use std::time::Instant;

use ecl_aaa::TimeNs;
use ecl_bench::fleet::{run_sweep, SweepConfig, SweepOutput};
use ecl_bench::{dc_motor_loop, split_scenario, write_result};

fn sweep(workers: usize) -> Result<(SweepOutput, u64), Box<dyn std::error::Error>> {
    let base = split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )?;
    let spec = dc_motor_loop(0.5)?;
    let config = SweepConfig {
        scenario_count: 64,
        workers,
        trace_scenarios: 2,
        ..SweepConfig::default()
    };
    let t0 = Instant::now();
    let out = run_sweep(&spec, &base, &config)?;
    Ok((out, t0.elapsed().as_nanos() as u64))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E11-MC — Monte-Carlo robustness sweep (64 scenarios)\n");

    let (serial, serial_ns) = sweep(1)?;
    let (parallel, parallel_ns) = sweep(4)?;

    let identical = serial.summary.render() == parallel.summary.render()
        && serial.summary.to_json() == parallel.summary.to_json()
        && serial.actuation_hist == parallel.actuation_hist
        && serial.traces == parallel.traces;
    assert!(
        identical,
        "1-worker and 4-worker sweeps must produce identical bytes"
    );
    // Quantized WCET tables make scenarios repeat adequation inputs, so
    // the content-addressed schedule cache must actually hit (64
    // scenarios over at most wcet_tables × policies distinct digests).
    assert!(
        serial.summary.cache_hits > 0,
        "schedule cache recorded no hits across {} scenarios",
        serial.summary.scenarios.len()
    );

    let md = serial.summary.render();
    println!("{md}");
    let hs = serial.actuation_hist.summary();
    println!(
        "merged La histogram: {} samples, p50 {} ns, p99 {} ns, max {} ns",
        hs.count, hs.p50_ns, hs.p99_ns, hs.max_ns
    );
    let speedup = serial_ns as f64 / parallel_ns as f64;
    println!(
        "\nwall clock: 1 worker {:.1} ms, 4 workers {:.1} ms (speedup {speedup:.2}x, \
         hardware-dependent), reports byte-identical: {identical}",
        serial_ns as f64 / 1e6,
        parallel_ns as f64 / 1e6
    );

    let report_path = write_result("exp11_monte_carlo.txt", &md)?;
    let json = format!(
        "{{\"experiment\":\"exp11_monte_carlo\",\"scenarios\":{},\
         \"serial_wall_ns\":{serial_ns},\"parallel_wall_ns\":{parallel_ns},\
         \"speedup_4_workers\":{speedup:.4},\"byte_identical\":{identical},\
         \"cache_hits\":{},\"cache_misses\":{},\
         \"robustness_margin\":{:.6}}}\n",
        serial.summary.scenarios.len(),
        serial.summary.cache_hits,
        serial.summary.cache_misses,
        serial.summary.robustness_margin()
    );
    let bench_path = write_result("BENCH_exp11.json", &json)?;
    println!(
        "wrote {} and {}",
        report_path.display(),
        bench_path.display()
    );
    Ok(())
}
