//! E10 — the end-to-end automotive case study: quarter-car active
//! suspension over a 3-ECU CAN network.
//!
//! The artifact the paper's conclusion promises: per-I/O latency table,
//! control-cost table (ideal / implemented / calibrated, with and without
//! road disturbance), the static schedule, and the generated deadlock-free
//! executives.
//!
//! The first workload runs fully traced: `results/exp10_trace.json`
//! carries the lifecycle phase spans plus the co-simulation schedule
//! slices and latency counters (open in Perfetto / chrome://tracing),
//! `results/exp10_timeline.{txt,csv}` the static-schedule Gantt, and
//! `results/BENCH_exp10.json` the per-phase wall-clock breakdown.

use ecl_aaa::{timeline, AdequationOptions, ArchitectureGraph, TimeNs};
use ecl_bench::{bench_json, table, write_result};
use ecl_control::plants;
use ecl_core::cosim::DisturbanceKind;
use ecl_core::lifecycle::{self, LifecycleInputs};
use ecl_core::translate::{uniform_timing, ControlLawSpec};
use ecl_linalg::Mat;
use ecl_telemetry::{trace, Collector, RecordingSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = plants::quarter_car();
    let law = ControlLawSpec::filtered("susp", 4, 1).with_data_units(8);
    let (alg, io) = law.to_algorithm()?;

    let mut arch = ArchitectureGraph::new();
    let wheel_ecu = arch.add_processor("wheel_ecu", "cortex-m");
    let body_ecu = arch.add_processor("body_ecu", "cortex-m");
    let control_ecu = arch.add_processor("control_ecu", "cortex-a");
    arch.add_bus(
        "can",
        &[wheel_ecu, body_ecu, control_ecu],
        TimeNs::from_micros(120),
        TimeNs::from_micros(8),
    )?;

    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(80), TimeNs::from_micros(600));
    for &s in &[io.sensors[0], io.sensors[2], io.sensors[3]] {
        db.forbid(s, body_ecu);
        db.forbid(s, control_ecu);
    }
    db.forbid(io.sensors[1], wheel_ecu);
    db.forbid(io.sensors[1], control_ecu);
    let step = *io.stages.last().expect("law has stages");
    db.forbid(step, wheel_ecu);
    db.forbid(step, body_ecu);
    db.forbid(io.actuators[0], body_ecu);
    db.forbid(io.actuators[0], control_ecu);

    let base = LifecycleInputs {
        plant: plant.sys.clone(),
        n_controls: 1,
        x0: vec![0.05, 0.0, 0.0, 0.0],
        ts: plant.ts,
        horizon: 1.0,
        lqr_q: Mat::diag(&[1e4, 1.0, 1e3, 1.0]),
        lqr_r: Mat::diag(&[1e-6]),
        q_weight: 1.0,
        r_weight: 1e-8,
        law,
        arch,
        db,
        adequation: AdequationOptions::default(),
        disturbance: DisturbanceKind::None,
    };

    println!("E10 — active suspension over a 3-ECU CAN network (Ts = 5 ms)\n");

    let mut rows = Vec::new();
    let mut schedule_text = String::new();
    let mut latency_text = String::new();
    let mut exec_text = String::new();
    for (label, disturbance) in [
        ("initial deflection", DisturbanceKind::None),
        (
            "road noise",
            DisturbanceKind::Noise {
                std_dev: 0.05,
                seed: 2008,
            },
        ),
    ] {
        let inputs = LifecycleInputs {
            disturbance,
            ..base.clone()
        };
        // The first workload runs fully traced; the noise workload reuses
        // the untraced entry point (same code path, NoopSink).
        let first = schedule_text.is_empty();
        let rep = if first {
            let mut tel = Collector::new(RecordingSink::default());
            let rep = lifecycle::run_with(&inputs, &mut tel)?;
            let sink = tel.into_sink();
            write_result(
                "exp10_timeline.txt",
                &timeline::gantt_text(&rep.schedule, &alg, &inputs.arch),
            )?;
            write_result(
                "exp10_timeline.csv",
                &timeline::gantt_csv(&rep.schedule, &alg, &inputs.arch),
            )?;
            write_result("exp10_trace.json", &trace::chrome_trace(sink.events()))?;
            write_result(
                "BENCH_exp10.json",
                &bench_json("exp10", &sink.span_durations()),
            )?;
            rep
        } else {
            lifecycle::run(&inputs)?
        };
        rows.push(vec![
            label.into(),
            format!("{:.6}", rep.ideal.cost),
            format!("{:.6}", rep.implemented.cost),
            format!("{:.6}", rep.calibrated.cost),
            format!("{:+.1}%", rep.degradation() * 100.0),
            format!("{:.0}%", rep.calibration_recovery() * 100.0),
        ]);
        if first {
            schedule_text = rep.schedule.render(&alg, &inputs.arch);
            latency_text = rep.latency.render();
            exec_text = format!("deadlock-free: {}\n{}", rep.deadlock_free, rep.executives);
        }
    }

    println!("== static schedule ==\n{schedule_text}");
    println!("== latency table (paper eq. 1-2) ==\n{latency_text}");
    println!("== control cost table ==");
    println!(
        "{}",
        table(
            &[
                "workload",
                "ideal",
                "implemented",
                "calibrated",
                "degradation",
                "recovered"
            ],
            &rows
        )
    );
    println!("== generated executives ==\n{exec_text}");
    println!("\ntelemetry: results/exp10_timeline.{{txt,csv}}, results/exp10_trace.json,");
    println!("results/BENCH_exp10.json (initial-deflection workload, fully traced)");
    Ok(())
}
