//! E9 — adequation quality and scaling.
//!
//! Schedules a layered filter-bank law onto 1..4 processors and compares
//! the schedule-pressure heuristic against earliest-finish-time and the
//! best of ten random mappings: makespan, speedup over one processor, and
//! average processor utilization.
//!
//! Telemetry artifacts written to `results/`: a Chrome trace of the
//! per-phase spans (`exp9_trace.json`), the 4-processor Gantt timeline
//! (`exp9_timeline.{txt,csv}`), and the per-phase wall-clock breakdown
//! (`BENCH_exp9.json`).

use ecl_aaa::{
    adequation, timeline, AdequationOptions, AlgorithmGraph, ArchitectureGraph, MappingPolicy,
    TimeNs, TimingDb,
};
use ecl_bench::{bench_json, table, write_result};
use ecl_core::translate::{uniform_timing, ControlLawSpec};
use ecl_telemetry::{trace, Collector, RecordingSink};

fn target(n_procs: usize) -> ArchitectureGraph {
    let mut arch = ArchitectureGraph::new();
    let ps: Vec<_> = (0..n_procs)
        .map(|i| arch.add_processor(format!("p{i}"), "arm"))
        .collect();
    if n_procs > 1 {
        arch.add_bus("bus", &ps, TimeNs::from_micros(30), TimeNs::from_micros(1))
            .expect("valid");
    }
    arch
}

fn makespan(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
    policy: MappingPolicy,
) -> TimeNs {
    let s = adequation(alg, arch, db, AdequationOptions { policy }).expect("schedulable");
    s.validate(alg, arch).expect("valid");
    s.makespan()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut tel = Collector::new(RecordingSink::default());

    // A wide filtered law: 12 independent pre-filters then a merge step —
    // plenty of parallelism for the heuristic to find.
    let law = ControlLawSpec::filtered("bank", 12, 2).with_data_units(4);
    let (alg, io) = tel.span("translate", |_| law.to_algorithm())?;
    let db = uniform_timing(&alg, &io, TimeNs::from_micros(40), TimeNs::from_micros(500));

    println!(
        "E9 — adequation scaling on a {}-operation filter-bank law\n",
        alg.len()
    );
    let seq = makespan(&alg, &target(1), &db, MappingPolicy::SchedulePressure);
    let mut rows = Vec::new();
    let mut widest = None;
    for procs in [1usize, 2, 3, 4] {
        let arch = target(procs);
        let (sp, eft, rnd, schedule) = tel.span(&format!("adequation {procs}p"), |_| {
            let sp = makespan(&alg, &arch, &db, MappingPolicy::SchedulePressure);
            let eft = makespan(&alg, &arch, &db, MappingPolicy::EarliestFinish);
            let rnd = (0..10)
                .map(|seed| makespan(&alg, &arch, &db, MappingPolicy::Random { seed }))
                .min()
                .expect("ten runs");
            let schedule = adequation(&alg, &arch, &db, AdequationOptions::default());
            (sp, eft, rnd, schedule)
        });
        let schedule = schedule?;
        let speedup = seq.as_nanos() as f64 / sp.as_nanos() as f64;
        let util: f64 = arch
            .processors()
            .map(|p| schedule.utilization(p))
            .sum::<f64>()
            / procs as f64;
        rows.push(vec![
            procs.to_string(),
            format!("{sp}"),
            format!("{eft}"),
            format!("{rnd}"),
            format!("{speedup:.2}x"),
            format!("{:.0}%", util * 100.0),
        ]);
        widest = Some((schedule, arch));
    }
    println!(
        "{}",
        table(
            &[
                "procs",
                "pressure",
                "eft",
                "best-of-10 random",
                "speedup",
                "avg util"
            ],
            &rows
        )
    );
    println!("\nexpected shape: pressure <= best random; speedup grows with");
    println!("processors until the bus and the merge stage saturate it.");

    let (schedule, arch) = widest.expect("loop ran");
    let sink = tel.into_sink();
    write_result(
        "exp9_timeline.txt",
        &timeline::gantt_text(&schedule, &alg, &arch),
    )?;
    write_result(
        "exp9_timeline.csv",
        &timeline::gantt_csv(&schedule, &alg, &arch),
    )?;
    write_result("exp9_trace.json", &trace::chrome_trace(sink.events()))?;
    write_result(
        "BENCH_exp9.json",
        &bench_json("exp9", &sink.span_durations()),
    )?;
    println!("\ntelemetry: results/exp9_timeline.{{txt,csv}}, results/exp9_trace.json,");
    println!("results/BENCH_exp9.json (4-processor pressure schedule)");
    Ok(())
}
