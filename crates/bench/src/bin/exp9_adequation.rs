//! E9 — adequation quality and scaling.
//!
//! Schedules a layered filter-bank law onto 1..4 processors and compares
//! the schedule-pressure heuristic against earliest-finish-time and the
//! best of ten random mappings: makespan, speedup over one processor, and
//! average processor utilization.

use ecl_aaa::{
    adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, MappingPolicy, TimeNs,
    TimingDb,
};
use ecl_bench::table;
use ecl_core::translate::{uniform_timing, ControlLawSpec};

fn target(n_procs: usize) -> ArchitectureGraph {
    let mut arch = ArchitectureGraph::new();
    let ps: Vec<_> = (0..n_procs)
        .map(|i| arch.add_processor(format!("p{i}"), "arm"))
        .collect();
    if n_procs > 1 {
        arch.add_bus("bus", &ps, TimeNs::from_micros(30), TimeNs::from_micros(1))
            .expect("valid");
    }
    arch
}

fn makespan(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
    policy: MappingPolicy,
) -> TimeNs {
    let s = adequation(alg, arch, db, AdequationOptions { policy }).expect("schedulable");
    s.validate(alg, arch).expect("valid");
    s.makespan()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A wide filtered law: 12 independent pre-filters then a merge step —
    // plenty of parallelism for the heuristic to find.
    let law = ControlLawSpec::filtered("bank", 12, 2).with_data_units(4);
    let (alg, io) = law.to_algorithm()?;
    let db = uniform_timing(&alg, &io, TimeNs::from_micros(40), TimeNs::from_micros(500));

    println!(
        "E9 — adequation scaling on a {}-operation filter-bank law\n",
        alg.len()
    );
    let seq = makespan(&alg, &target(1), &db, MappingPolicy::SchedulePressure);
    let mut rows = Vec::new();
    for procs in [1usize, 2, 3, 4] {
        let arch = target(procs);
        let sp = makespan(&alg, &arch, &db, MappingPolicy::SchedulePressure);
        let eft = makespan(&alg, &arch, &db, MappingPolicy::EarliestFinish);
        let rnd = (0..10)
            .map(|seed| makespan(&alg, &arch, &db, MappingPolicy::Random { seed }))
            .min()
            .expect("ten runs");
        let speedup = seq.as_nanos() as f64 / sp.as_nanos() as f64;
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
        let util: f64 = arch
            .processors()
            .map(|p| schedule.utilization(p))
            .sum::<f64>()
            / procs as f64;
        rows.push(vec![
            procs.to_string(),
            format!("{sp}"),
            format!("{eft}"),
            format!("{rnd}"),
            format!("{speedup:.2}x"),
            format!("{:.0}%", util * 100.0),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "procs",
                "pressure",
                "eft",
                "best-of-10 random",
                "speedup",
                "avg util"
            ],
            &rows
        )
    );
    println!("\nexpected shape: pressure <= best random; speedup grows with");
    println!("processors until the bus and the merge stage saturate it.");
    Ok(())
}
