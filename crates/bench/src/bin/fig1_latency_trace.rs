//! F1 — paper Fig. 1: the timing of input/output operations under a real
//! implementation.
//!
//! Co-simulates the DC-motor loop on a 2-ECU target and prints, per
//! sampling period `k`, the sampling instants `I_j(k)`, actuation instants
//! `O_j(k)` and the latencies `Ls_j(k) = I_j(k) − k·Ts`,
//! `La_j(k) = O_j(k) − k·Ts` of the paper's equations (1)–(2), plus an
//! ASCII rendering of one period's timeline.

use ecl_aaa::{adequation, AdequationOptions, TimeNs};
use ecl_bench::{dc_motor_loop, split_scenario, table};
use ecl_core::cosim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = dc_motor_loop(0.6)?;
    let scenario = split_scenario(
        2,
        1,
        TimeNs::from_millis(4),
        TimeNs::from_micros(300),
        TimeNs::from_millis(12),
    )?;
    let schedule = adequation(
        &scenario.alg,
        &scenario.arch,
        &scenario.db,
        AdequationOptions::default(),
    )?;
    schedule.validate(&scenario.alg, &scenario.arch)?;

    let run = cosim::run_scheduled(
        &spec,
        &scenario.alg,
        &scenario.io,
        &schedule,
        &scenario.arch,
    )?;
    let ts = TimeNs::from_secs_f64(spec.ts);

    println!("F1 — implementation effect on the timing of I/O operations");
    println!("plant: dc-motor, Ts = {ts}, target: 2 ECUs + CAN-like bus\n");

    let periods = run.sample_instants[0].len().min(8);
    let mut rows = Vec::new();
    for k in 0..periods {
        let origin = ts * k as i64;
        let mut row = vec![k.to_string()];
        for j in 0..run.sample_instants.len() {
            let i_jk = run.sample_instants[j][k];
            row.push(format!("{i_jk}"));
            row.push(format!("{}", i_jk - origin));
        }
        for j in 0..run.actuation_instants.len() {
            let o_jk = run.actuation_instants[j][k];
            row.push(format!("{o_jk}"));
            row.push(format!("{}", o_jk - origin));
        }
        rows.push(row);
    }
    println!(
        "{}",
        table(
            &["k", "I_0(k)", "Ls_0(k)", "I_1(k)", "Ls_1(k)", "O_0(k)", "La_0(k)"],
            &rows
        )
    );

    // One-period ASCII timeline (40 columns spanning [0, Ts)).
    println!("one period timeline (each column = Ts/40):");
    let cols = 40usize;
    let pos = |t: TimeNs| -> usize {
        ((t.as_nanos() as f64 / ts.as_nanos() as f64) * cols as f64) as usize
    };
    let mut line = vec!['.'; cols + 1];
    line[0] = 'k';
    for j in 0..run.sample_instants.len() {
        let p = pos(run.sample_instants[j][0]).min(cols);
        line[p] = char::from_digit(j as u32, 10).unwrap_or('s');
    }
    for inst in &run.actuation_instants {
        let p = pos(inst[0]).min(cols);
        line[p] = 'A';
    }
    println!("  {}", line.iter().collect::<String>());
    println!("  k = period start, digits = input samplings I_j, A = actuation O_0\n");

    let rep = run.latency_report()?;
    println!("summary:\n{}", rep.render());
    Ok(())
}
