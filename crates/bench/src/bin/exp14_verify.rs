//! E14-VERIFY — the static verifier cross-validated against the dynamic
//! stack.
//!
//! `ecl-verify` *proves* properties from the artifacts alone: schedule
//! feasibility, sound static `Ls`/`La` bounds (paper eq. 1/2, nominal
//! and under bounded-retry fault plans), executive happens-before
//! safety, and delay-graph structure. This experiment turns the
//! soundness claim into a measured gate, twice:
//!
//! * on the E10/E13 quarter-car deployment (3 ECUs on one CAN bus): the
//!   verifier must report **zero errors**, and every completion instant
//!   the `ecl-exec` virtual machine measures — nominally and under a
//!   retries-only fault plan — must stay at or below its static bound;
//! * on a fleet sweep of randomly perturbed DC-motor implementations
//!   (`SweepConfig::verify_static`): every scenario's schedule verifies
//!   with zero errors and the measured co-simulation latencies
//!   (including `run_scheduled_traced` scenarios) never exceed the
//!   static bounds.
//!
//! The usual worker-invariance gate applies: `ECL_FLEET_WORKERS=<n>`
//! runs the sweep on exactly `n` workers and CI diffs
//! `results/BENCH_exp14.json` across counts, so the artifact carries no
//! wall-clock content. Without the variable, both counts run in-process
//! and the binary asserts byte identity.

use ecl_aaa::{adequation, codegen, AdequationOptions, ArchitectureGraph, Schedule, TimeNs};
use ecl_bench::fleet::{run_sweep, workers_from_env, SweepConfig, SweepOutput};
use ecl_bench::{dc_motor_loop, split_scenario, write_result};
use ecl_control::plants;
use ecl_core::faults::{CommFault, FaultConfig, FaultPlan};
use ecl_core::translate::{uniform_timing, ControlLawSpec};
use ecl_exec::ExecOptions;
use ecl_verify::{LatencyBoundReport, Severity, VerifyReport};

/// How many control periods the virtual executives run for.
const PERIODS: u32 = 60;

/// The E10/E13 quarter-car deployment: suspension law on 3 ECUs sharing
/// a CAN bus, with placement interdictions pinning I/O to its ECU.
#[allow(clippy::type_complexity)]
fn quarter_car_case() -> Result<
    (
        ecl_aaa::AlgorithmGraph,
        ArchitectureGraph,
        ecl_aaa::TimingDb,
        Schedule,
        TimeNs,
    ),
    Box<dyn std::error::Error>,
> {
    let plant = plants::quarter_car();
    let law = ControlLawSpec::filtered("susp", 4, 1).with_data_units(8);
    let (alg, io) = law.to_algorithm()?;

    let mut arch = ArchitectureGraph::new();
    let wheel_ecu = arch.add_processor("wheel_ecu", "cortex-m");
    let body_ecu = arch.add_processor("body_ecu", "cortex-m");
    let control_ecu = arch.add_processor("control_ecu", "cortex-a");
    arch.add_bus(
        "can",
        &[wheel_ecu, body_ecu, control_ecu],
        TimeNs::from_micros(120),
        TimeNs::from_micros(8),
    )?;

    let mut db = uniform_timing(&alg, &io, TimeNs::from_micros(80), TimeNs::from_micros(600));
    for &s in &[io.sensors[0], io.sensors[2], io.sensors[3]] {
        db.forbid(s, body_ecu);
        db.forbid(s, control_ecu);
    }
    db.forbid(io.sensors[1], wheel_ecu);
    db.forbid(io.sensors[1], control_ecu);
    let step = *io.stages.last().expect("law has stages");
    db.forbid(step, wheel_ecu);
    db.forbid(step, body_ecu);
    db.forbid(io.actuators[0], body_ecu);
    db.forbid(io.actuators[0], control_ecu);

    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
    Ok((alg, arch, db, schedule, TimeNs::from_secs_f64(plant.ts)))
}

/// Scans fault-plan seeds for a retries-only plan (at least one
/// retransmission, no drop, no dead ECU) — the regime where the static
/// fault-aware bounds are sound.
fn retries_only_plan(
    schedule: &Schedule,
    arch: &ArchitectureGraph,
) -> Result<(u64, FaultPlan, u32), Box<dyn std::error::Error>> {
    for seed in 0..4096u64 {
        let config = FaultConfig {
            seed,
            frame_loss_rate: 0.05,
            max_retries: 3,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&config, schedule, arch, PERIODS)?;
        let n_procs = arch.processors().count();
        if (0..n_procs).any(|p| plan.proc_dead_from(p).is_some()) {
            continue;
        }
        let mut retries = 0u32;
        let mut dropped = false;
        for i in 0..schedule.comms().len() {
            for k in 0..PERIODS {
                match plan.comm_fault(i, k) {
                    CommFault::Ok => {}
                    CommFault::Retry(r) => retries += r,
                    CommFault::Drop => dropped = true,
                }
            }
        }
        if !dropped && retries > 0 {
            return Ok((seed, plan, retries));
        }
    }
    Err("no retries-only fault plan in 4096 seeds".into())
}

/// Executes the generated code on the virtual machine and returns the
/// smallest `static bound − measured completion offset` margin across
/// every sensor/actuator completion, in ns. Soundness demands a
/// non-negative result.
fn vm_soundness_margin(
    alg: &ecl_aaa::AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    period: TimeNs,
    faults: Option<&FaultPlan>,
    bounds: &LatencyBoundReport,
) -> Result<i64, Box<dyn std::error::Error>> {
    let generated = codegen::generate(schedule, alg, arch)?;
    let opts = ExecOptions {
        period,
        periods: PERIODS,
        faults,
    };
    let measured = ecl_exec::run(&generated, arch, schedule, &opts)?;
    let mut margin = i64::MAX;
    for r in &measured.ops {
        let Some(b) = bounds.bound_for(r.op) else {
            continue; // only I/O operations carry Ls/La bounds
        };
        let offset = r.end.as_nanos() - period.as_nanos() * i64::from(r.period);
        margin = margin.min(b.faulty.as_nanos() - offset);
    }
    assert!(margin < i64::MAX, "the VM measured no I/O completion");
    Ok(margin)
}

fn verify_case(
    alg: &ecl_aaa::AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &ecl_aaa::TimingDb,
    schedule: &Schedule,
    period: TimeNs,
    faults: Option<&FaultPlan>,
) -> Result<VerifyReport, Box<dyn std::error::Error>> {
    let report = ecl_verify::verify(alg, arch, db, schedule, period, faults)?;
    assert!(
        report.is_clean(),
        "static verifier flagged the quarter-car schedule:\n{}",
        report.render()
    );
    Ok(report)
}

fn sweep_config(workers: usize) -> SweepConfig {
    SweepConfig {
        scenario_count: 16,
        workers,
        trace_scenarios: 2,
        verify_static: true,
        ..SweepConfig::default()
    }
}

fn sweep(workers: usize) -> Result<SweepOutput, Box<dyn std::error::Error>> {
    let base = split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )?;
    let spec = dc_motor_loop(0.3)?;
    Ok(run_sweep(&spec, &base, &sweep_config(workers))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E14-VERIFY — static verifier vs measured execution ({PERIODS} periods)\n");

    let (alg, arch, db, schedule, period) = quarter_car_case()?;

    // Gate 1: the quarter-car schedule verifies with zero errors and the
    // nominal VM run never exceeds the static bounds.
    let nominal = verify_case(&alg, &arch, &db, &schedule, period, None)?;
    println!("== nominal verification ==\n{}", nominal.render());
    let nominal_bounds = nominal.bounds.as_ref().expect("bounds derived");
    let nominal_margin = vm_soundness_margin(&alg, &arch, &schedule, period, None, nominal_bounds)?;
    println!("nominal VM soundness margin: {nominal_margin} ns\n");
    assert!(
        nominal_margin >= 0,
        "a nominal VM completion exceeded its static bound by {} ns",
        -nominal_margin
    );

    // Gate 2: under a retries-only plan the fault-aware bounds still
    // dominate every measured completion.
    let (seed, plan, retries) = retries_only_plan(&schedule, &arch)?;
    println!("fault plan: seed {seed}, {retries} retransmission(s), no drop, no dead ECU\n");
    let faulty = verify_case(&alg, &arch, &db, &schedule, period, Some(&plan))?;
    let faulty_bounds = faulty.bounds.as_ref().expect("bounds derived");
    assert!(
        !faulty_bounds.drop_capable,
        "retries-only plan must keep the bounds sound"
    );
    assert!(faulty_bounds.retry_stretch > TimeNs::ZERO);
    let faulty_margin =
        vm_soundness_margin(&alg, &arch, &schedule, period, Some(&plan), faulty_bounds)?;
    println!("faulty VM soundness margin: {faulty_margin} ns\n");
    // Pinned at exactly zero: the per-cone retry stretch charges the
    // binding actuator only the retransmissions its own wait chains can
    // cross, so the bound is *tight* here — the plan-wide stretch it
    // replaced left this case 184us of slack.
    assert_eq!(
        faulty_margin, 0,
        "per-cone fault-aware bound must be tight for the quarter-car case \
         (negative: unsound; positive: regressed to a slack bound)"
    );

    // Gate 3: worker invariance of the self-verifying fleet sweep over
    // randomly perturbed implementations.
    let summary = match workers_from_env()? {
        Some(workers) => {
            println!("verified sweep on {workers} worker(s) (ECL_FLEET_WORKERS)");
            sweep(workers)?.summary
        }
        None => {
            let serial = sweep(1)?;
            let parallel = sweep(4)?;
            assert!(
                serial.summary.render() == parallel.summary.render()
                    && serial.summary.to_json() == parallel.summary.to_json(),
                "1-worker and 4-worker verified sweeps must produce identical bytes"
            );
            println!("1-worker vs 4-worker verified sweep: byte-identical");
            serial.summary
        }
    };
    let verification = summary.verification.expect("sweep ran with verify_static");
    println!(
        "sweep verification: {} schedules, {} error(s), {} warning(s), worst margin {} ns\n",
        verification.verified,
        verification.errors,
        verification.warnings,
        verification.worst_margin_ns
    );
    assert_eq!(
        verification.errors, 0,
        "the static verifier flagged a sweep schedule"
    );
    assert!(
        verification.worst_margin_ns >= 0,
        "a measured sweep latency exceeded its static bound"
    );

    let md = format!(
        "E14-VERIFY — static verifier vs measured execution\n\n\
         == nominal verification ==\n{}\n\
         nominal VM soundness margin: {nominal_margin} ns\n\n\
         == faulty verification (seed {seed}, {retries} retransmissions) ==\n{}\n\
         faulty VM soundness margin: {faulty_margin} ns\n\n\
         == verified fleet sweep ==\n{}",
        nominal.render(),
        faulty.render(),
        summary.render()
    );
    let report_path = write_result("exp14_verify.txt", &md)?;

    // The machine-readable artifact: wall-clock-free and worker-count
    // free, so CI can diff the bytes across ECL_FLEET_WORKERS values.
    let bench = format!(
        "{{\"experiment\":\"exp14_verify\",\
         \"periods\":{PERIODS},\
         \"nominal_errors\":{},\
         \"nominal_warnings\":{},\
         \"nominal_la_bound_ns\":{},\
         \"nominal_vm_margin_ns\":{nominal_margin},\
         \"fault_seed\":{seed},\
         \"fault_retries\":{retries},\
         \"faulty_retry_stretch_ns\":{},\
         \"faulty_la_bound_ns\":{},\
         \"faulty_vm_margin_ns\":{faulty_margin},\
         \"sweep_verified\":{},\
         \"sweep_errors\":{},\
         \"sweep_warnings\":{},\
         \"sweep_worst_margin_ns\":{}}}\n",
        nominal.count(Severity::Error),
        nominal.count(Severity::Warn),
        nominal_bounds.max_actuation_bound().as_nanos(),
        faulty_bounds.retry_stretch.as_nanos(),
        faulty_bounds.max_actuation_bound().as_nanos(),
        verification.verified,
        verification.errors,
        verification.warnings,
        verification.worst_margin_ns,
    );
    let bench_path = write_result("BENCH_exp14.json", &bench)?;
    println!(
        "wrote {} and {}",
        report_path.display(),
        bench_path.display()
    );
    Ok(())
}
