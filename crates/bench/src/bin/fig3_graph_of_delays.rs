//! F3 — paper Fig. 3: plant, controller and graph-of-delays
//! interconnection.
//!
//! Runs the same DC-motor loop twice — once under the stroboscopic model,
//! once re-activated by the graph of delays synthesized from a 2-ECU
//! schedule — and prints the two closed-loop responses side by side plus
//! the cost comparison. This is the co-simulation the methodology enables
//! early in the lifecycle.

use ecl_aaa::{adequation, AdequationOptions, TimeNs};
use ecl_bench::{dc_motor_loop, split_scenario, table};
use ecl_core::cosim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = dc_motor_loop(1.0)?;
    let ideal = cosim::run_ideal(&spec)?;

    let scenario = split_scenario(
        2,
        1,
        TimeNs::from_millis(8),
        TimeNs::from_micros(300),
        TimeNs::from_millis(18),
    )?;
    let schedule = adequation(
        &scenario.alg,
        &scenario.arch,
        &scenario.db,
        AdequationOptions::default(),
    )?;
    let implemented = cosim::run_scheduled(
        &spec,
        &scenario.alg,
        &scenario.io,
        &schedule,
        &scenario.arch,
    )?;

    println!("F3 — co-simulation with the graph of delays");
    println!(
        "schedule makespan {} within Ts = {} ms\n",
        schedule.makespan(),
        spec.ts * 1e3
    );

    let xi = ideal.result.signal("x0").expect("probed");
    let xs = implemented.result.signal("x0").expect("probed");
    let mut rows = Vec::new();
    for k in 0..16 {
        let t = k as f64 * spec.ts;
        rows.push(vec![
            format!("{t:.2}"),
            format!("{:+.4}", xi.sample(t).unwrap_or(0.0)),
            format!("{:+.4}", xs.sample(t).unwrap_or(0.0)),
        ]);
    }
    println!(
        "{}",
        table(&["t [s]", "omega ideal", "omega implemented"], &rows)
    );

    println!("ideal cost       : {:.6}", ideal.cost);
    println!("implemented cost : {:.6}", implemented.cost);
    println!(
        "degradation      : {:+.1}%",
        (implemented.cost / ideal.cost - 1.0) * 100.0
    );
    let rep = implemented.latency_report()?;
    println!("\nlatency report:\n{}", rep.render());
    Ok(())
}
