//! E12-FAULT — deterministic fault-injection sweep over the fleet.
//!
//! Runs 32 perturbed implementations of the DC-motor loop with three
//! fault classes layered on top of the usual WCET/period/policy axes:
//! communication frame loss with bounded retransmission, transient link
//! outage windows, and permanent processor dropout. Every scenario with
//! faults is compared against its fault-free twin on the same schedule,
//! producing the degradation table of the sweep report.
//!
//! Two determinism gates hang off this binary:
//!
//! * **Worker invariance** — `ECL_FLEET_WORKERS=<n>` runs the sweep on
//!   exactly `n` workers; the CI gate runs it at 1 and 4 and diffs
//!   `results/BENCH_exp12.json`, which therefore contains *no*
//!   wall-clock content. Without the variable, both counts run in-process
//!   and the binary asserts byte identity itself.
//! * **Zero-rate reproduction** — a sweep whose fault axes are all zero
//!   must reproduce the fault-free E11-MC report byte-for-byte; when
//!   `results/exp11_monte_carlo.txt` exists (E11 ran earlier), the
//!   reproduction is diffed against it.

use ecl_aaa::TimeNs;
use ecl_bench::fleet::{run_sweep, workers_from_env, FaultAxes, SweepConfig, SweepOutput};
use ecl_bench::{dc_motor_loop, split_scenario, write_result};
use ecl_core::report::SweepSummary;

/// The E11-MC sweep configuration, reused verbatim for the zero-rate
/// reproduction check.
fn e11_config(workers: usize) -> SweepConfig {
    SweepConfig {
        scenario_count: 64,
        workers,
        trace_scenarios: 2,
        ..SweepConfig::default()
    }
}

fn fault_config(workers: usize) -> SweepConfig {
    SweepConfig {
        scenario_count: 32,
        workers,
        faults: FaultAxes {
            frame_loss_rates: vec![0.0, 0.10, 0.30],
            link_outage_rates: vec![0.0, 0.15],
            proc_dropout_rates: vec![0.0, 0.01],
            ..FaultAxes::default()
        },
        ..SweepConfig::default()
    }
}

fn sweep(config: &SweepConfig, horizon: f64) -> Result<SweepOutput, Box<dyn std::error::Error>> {
    let base = split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )?;
    let spec = dc_motor_loop(horizon)?;
    Ok(run_sweep(&spec, &base, config)?)
}

/// The machine-readable artifact. Deliberately free of wall-clock
/// content *and* of the worker count: the CI gate diffs these bytes
/// across `ECL_FLEET_WORKERS` values.
fn bench_json(summary: &SweepSummary, e11_reproduced: Option<bool>) -> String {
    format!(
        "{{\"experiment\":\"exp12_fault_sweep\",\
         \"scenarios\":{},\"faulty_scenarios\":{},\
         \"survivable_fraction\":{},\
         \"robustness_margin\":{:.6},\
         \"cache_hits\":{},\"cache_misses\":{},\
         \"e11_zero_rate_reproduced\":{}}}\n",
        summary.scenarios.len(),
        summary.degradations.len(),
        summary
            .survivable_fraction()
            .map_or("null".to_string(), |f| format!("{f:.6}")),
        summary.robustness_margin(),
        summary.cache_hits,
        summary.cache_misses,
        e11_reproduced.map_or("null".to_string(), |b| b.to_string()),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E12-FAULT — deterministic fault-injection sweep (32 scenarios)\n");

    // Gate 2 first: a zero-rate sweep must reproduce E11-MC's bytes.
    let e11_path = std::path::Path::new("results/exp11_monte_carlo.txt");
    let e11_reproduced = if e11_path.exists() {
        let expected = std::fs::read_to_string(e11_path)?;
        let zero = sweep(&e11_config(2), 0.5)?;
        let reproduced = zero.summary.render() == expected;
        assert!(
            reproduced,
            "zero-rate fault axes must reproduce the E11-MC report bytes"
        );
        println!("zero-rate reproduction of E11-MC: byte-identical");
        Some(reproduced)
    } else {
        println!(
            "zero-rate reproduction of E11-MC: skipped ({} absent)",
            e11_path.display()
        );
        None
    };

    // Gate 1: worker invariance of the faulty sweep.
    let summary = match workers_from_env()? {
        Some(workers) => {
            println!("fault sweep on {workers} worker(s) (ECL_FLEET_WORKERS)");
            sweep(&fault_config(workers), 0.3)?.summary
        }
        None => {
            let serial = sweep(&fault_config(1), 0.3)?;
            let parallel = sweep(&fault_config(4), 0.3)?;
            assert!(
                serial.summary.render() == parallel.summary.render()
                    && serial.summary.to_json() == parallel.summary.to_json()
                    && serial.actuation_hist == parallel.actuation_hist,
                "1-worker and 4-worker fault sweeps must produce identical bytes"
            );
            println!("1-worker vs 4-worker fault sweep: byte-identical");
            serial.summary
        }
    };

    let md = summary.render();
    println!("{md}");
    println!(
        "{} of {} scenarios injected faults, survivable fraction {}",
        summary.degradations.len(),
        summary.scenarios.len(),
        summary
            .survivable_fraction()
            .map_or("n/a".to_string(), |f| format!("{f:.4}")),
    );

    let report_path = write_result("exp12_fault_sweep.txt", &md)?;
    let bench_path = write_result("BENCH_exp12.json", &bench_json(&summary, e11_reproduced))?;
    println!(
        "wrote {} and {}",
        report_path.display(),
        bench_path.display()
    );
    Ok(())
}
