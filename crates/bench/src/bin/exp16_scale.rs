//! E16-SCALE — the fleet at 10⁵ scenarios: allocation-free sim-kernel
//! hot loop, ideal-run memoization and batched work claiming.
//!
//! Runs a 100 000-scenario sweep of the standard DC-motor split loop
//! (light pipeline: no fault axes, no executive validation, no static
//! verification, no traces) with the fleet profiler on, and checks the
//! three claims that let the sweep reach this size:
//!
//! * **Ideal-run memoization** — the stroboscopic reference is pure in
//!   the loop spec and the sweep varies only its sampling period, so the
//!   `IdealRunCache` answers all but a handful of the 10⁵ lookups from
//!   memory. Asserted: one lookup per scenario, at most one miss per
//!   period scale, and a per-scenario `ideal co-simulation` profile mean
//!   at least 3× below the PR-6 baseline (which re-simulated the
//!   reference for every scenario).
//! * **Allocation-free hot loop** — the engine's
//!   [`ecl_sim::EngineStats::hot_allocs`] counter stays 0 across the
//!   sweep's co-simulation flavours, machine-checked here and greppable
//!   from `results/BENCH_exp16.json` by the CI gate.
//! * **Throughput** — the profiled 4-worker sweep clears 3× the PR-6
//!   baseline throughput (`results/PROFILE_exp15.json`: 256 scenarios in
//!   1.6196 s → 158 scenarios/s, full pipeline).
//!
//! Artifacts follow the E15 split:
//!
//! * **Deterministic** — `results/exp16_scale.txt`, a *digest* report
//!   (FNV-64 of the rendered summary, the JSON summary and the merged
//!   histogram, plus the order-invariant cache/memo counters). The full
//!   100k-row report would be megabytes; its digests pin the same bytes.
//!   CI diffs this file across `ECL_FLEET_WORKERS` counts; without the
//!   variable the binary runs 1 and 4 workers in-process and asserts
//!   identity directly on the underlying artifacts.
//! * **Sidecar** — `results/PROFILE_exp16.json` (per-phase wall-clock
//!   attribution) and `results/BENCH_exp16.json` (throughput and memo
//!   evidence vs the PR-6 baseline).

use ecl_aaa::{adequation, AdequationOptions, Fnv1a, TimeNs};
use ecl_bench::fleet::{run_sweep, workers_from_env, SweepConfig, SweepOutput};
use ecl_bench::{dc_motor_loop, split_scenario, write_result, SplitScenario};
use ecl_core::cosim::{self, LoopSpec};
use ecl_telemetry::{Phase, ProfileReport};

/// Scenario count: two orders of magnitude past E11-MC's 64.
const SCENARIOS: usize = 100_000;

/// PR-6 baseline throughput from `results/PROFILE_exp15.json`: 256
/// scenarios, 4 workers, wall 1.619611298 s.
const BASELINE_SCENARIOS_PER_S: f64 = 256.0 / 1.619_611_298;

/// PR-6 baseline mean of the `ideal co-simulation` phase (same profile):
/// every scenario re-simulated the stroboscopic reference from scratch.
const BASELINE_IDEAL_MEAN_NS: f64 = 2_272_412.9;

/// Required improvement factor for both throughput claims.
const SPEEDUP_FLOOR: f64 = 3.0;

fn config(workers: usize) -> SweepConfig {
    SweepConfig {
        scenario_count: SCENARIOS,
        workers,
        trace_scenarios: 0,
        profile: true,
        ..SweepConfig::default()
    }
}

fn base() -> Result<SplitScenario, Box<dyn std::error::Error>> {
    Ok(split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )?)
}

/// The E15 loop at a shorter horizon: one sampling period per scenario,
/// so 10⁵ co-simulations fit in minutes while still exercising the full
/// sample → compute → actuate event cascade.
fn spec() -> Result<LoopSpec, Box<dyn std::error::Error>> {
    Ok(dc_motor_loop(0.05)?)
}

fn sweep(workers: usize) -> Result<SweepOutput, Box<dyn std::error::Error>> {
    Ok(run_sweep(&spec()?, &base()?, &config(workers))?)
}

fn fnv64(bytes: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes.as_bytes());
    h.finish()
}

/// The deterministic digest report (diffed across worker counts by CI).
fn digest_report(out: &SweepOutput) -> String {
    format!(
        "E16-SCALE deterministic digest (diffed across ECL_FLEET_WORKERS)\n\
         scenarios: {}\n\
         summary_render_fnv64: {:#018x}\n\
         summary_json_fnv64: {:#018x}\n\
         actuation_hist_fnv64: {:#018x}\n\
         robustness_margin: {:.6}\n\
         schedule_cache: hits={} misses={}\n\
         ideal_memo: hits={} misses={}\n",
        out.summary.scenarios.len(),
        fnv64(&out.summary.render()),
        fnv64(&out.summary.to_json()),
        fnv64(&format!("{:?}", out.actuation_hist)),
        out.summary.robustness_margin(),
        out.summary.cache_hits,
        out.summary.cache_misses,
        out.ideal_hits,
        out.ideal_misses,
    )
}

/// Mean wall time of one profile phase, in nanoseconds.
fn phase_mean_ns(profile: &ProfileReport, phase: Phase) -> f64 {
    profile
        .phases
        .iter()
        .find(|s| s.phase == phase)
        .map_or(0.0, |s| s.total_ns as f64 / s.count.max(1) as f64)
}

/// Runs every co-simulation flavour the sweep uses on this loop and
/// returns the summed `hot_allocs` counter — the machine-checkable
/// evidence that the kernel's event hot path allocates nothing once its
/// scratch buffers are warm.
fn hot_allocs_probe() -> Result<u64, Box<dyn std::error::Error>> {
    let spec = spec()?;
    let base = base()?;
    let mut total = 0;
    for scale in config(1).period_scales {
        let mut scaled = spec.clone();
        scaled.ts = spec.ts * scale;
        total += cosim::run_ideal(&scaled)?.stats.hot_allocs;
    }
    let schedule = adequation(
        &base.alg,
        &base.arch,
        &base.db,
        AdequationOptions::default(),
    )?;
    let run = cosim::run_scheduled(&spec, &base.alg, &base.io, &schedule, &base.arch)?;
    total += run.stats.hot_allocs;
    Ok(total)
}

/// Wall-clock evidence sidecar (never diffed across worker counts).
fn bench_json(out: &SweepOutput, profile: &ProfileReport, hot_allocs: u64) -> String {
    let wall_s = profile.wall_ns as f64 / 1e9;
    let throughput = out.summary.scenarios.len() as f64 / wall_s;
    let throughput_x = throughput / BASELINE_SCENARIOS_PER_S;
    let ideal_mean_ns = phase_mean_ns(profile, Phase::IdealSim);
    let ideal_speedup_x = BASELINE_IDEAL_MEAN_NS / ideal_mean_ns.max(1.0);
    format!(
        "{{\"experiment\":\"exp16_scale\",\
         \"scenarios\":{},\
         \"workers\":{},\
         \"wall_ns\":{},\
         \"scenarios_per_s\":{throughput:.1},\
         \"baseline_scenarios_per_s\":{BASELINE_SCENARIOS_PER_S:.1},\
         \"throughput_x\":{throughput_x:.2},\
         \"throughput_ge_3x\":{},\
         \"ideal_mean_ns\":{ideal_mean_ns:.1},\
         \"baseline_ideal_mean_ns\":{BASELINE_IDEAL_MEAN_NS:.1},\
         \"ideal_speedup_x\":{ideal_speedup_x:.1},\
         \"ideal_speedup_ge_3x\":{},\
         \"ideal_hits\":{},\"ideal_misses\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\
         \"hot_allocs\":{hot_allocs},\
         \"hot_allocs_zero\":{}}}\n",
        out.summary.scenarios.len(),
        profile.workers.len(),
        profile.wall_ns,
        throughput_x >= SPEEDUP_FLOOR,
        ideal_speedup_x >= SPEEDUP_FLOOR,
        out.ideal_hits,
        out.ideal_misses,
        out.summary.cache_hits,
        out.summary.cache_misses,
        hot_allocs == 0,
    )
}

/// Worker-count-independent assertions.
fn check(out: &SweepOutput) {
    assert_eq!(out.summary.scenarios.len(), SCENARIOS);
    assert_eq!(
        out.ideal_hits + out.ideal_misses,
        SCENARIOS as u64,
        "one ideal-memo lookup per scenario"
    );
    assert!(
        out.ideal_misses <= config(1).period_scales.len() as u64,
        "at most one ideal run per period scale, got {} misses",
        out.ideal_misses
    );
    let profile = out.profile.as_ref().expect("profiling was requested");
    let fraction = profile.attributed_fraction();
    assert!(
        fraction >= 0.95,
        "only {:.2}% of busy time attributed to named phases",
        fraction * 100.0
    );
    // The memo turns the per-scenario reference simulation into a table
    // lookup; its profile mean must collapse vs the PR-6 baseline.
    let ideal_mean_ns = phase_mean_ns(profile, Phase::IdealSim);
    assert!(
        BASELINE_IDEAL_MEAN_NS / ideal_mean_ns.max(1.0) >= SPEEDUP_FLOOR,
        "ideal co-simulation mean {ideal_mean_ns:.0} ns is not >= 3x \
         below the {BASELINE_IDEAL_MEAN_NS:.0} ns baseline"
    );
}

/// Throughput assertion, made only for the 4-worker profiled sweep (the
/// configuration the PR-6 baseline was measured with).
fn check_throughput(out: &SweepOutput) {
    let profile = out.profile.as_ref().expect("profiling was requested");
    let throughput = out.summary.scenarios.len() as f64 / (profile.wall_ns as f64 / 1e9);
    assert!(
        throughput >= SPEEDUP_FLOOR * BASELINE_SCENARIOS_PER_S,
        "4-worker sweep at {throughput:.0} scenarios/s is not >= 3x the \
         {BASELINE_SCENARIOS_PER_S:.0}/s baseline"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E16-SCALE — 100k-scenario fleet sweep (memoized ideal runs, alloc-free kernel)\n");

    let hot_allocs = hot_allocs_probe()?;
    assert_eq!(
        hot_allocs, 0,
        "the event hot path allocated {hot_allocs} times"
    );
    println!("hot-path allocation counter across all co-simulation flavours: 0");

    let out = match workers_from_env()? {
        Some(workers) => {
            println!("sweeping {SCENARIOS} scenarios on {workers} worker(s) (ECL_FLEET_WORKERS)");
            let out = sweep(workers)?;
            check(&out);
            if workers == 4 {
                check_throughput(&out);
            }
            out
        }
        None => {
            let serial = sweep(1)?;
            check(&serial);
            let parallel = sweep(4)?;
            check(&parallel);
            check_throughput(&parallel);
            assert!(
                serial.summary == parallel.summary
                    && serial.summary.render() == parallel.summary.render()
                    && serial.summary.to_json() == parallel.summary.to_json()
                    && serial.actuation_hist == parallel.actuation_hist
                    && serial.traces == parallel.traces,
                "1-worker and 4-worker sweeps must produce identical \
                 deterministic artifacts"
            );
            println!("1-worker vs 4-worker sweep: deterministic artifacts byte-identical");
            // Archive the parallel run: its sidecar carries the profile
            // the throughput claim was checked against.
            parallel
        }
    };

    let profile = out.profile.as_ref().expect("profiling was requested");
    let wall_s = profile.wall_ns as f64 / 1e9;
    println!(
        "{} scenarios in {wall_s:.1} s on {} worker(s): {:.0} scenarios/s \
         ({:.1}x the PR-6 baseline)",
        out.summary.scenarios.len(),
        profile.workers.len(),
        out.summary.scenarios.len() as f64 / wall_s,
        out.summary.scenarios.len() as f64 / wall_s / BASELINE_SCENARIOS_PER_S,
    );
    println!(
        "ideal memo: {} hits / {} misses; ideal co-simulation mean {:.1} us \
         (baseline {:.0} us)",
        out.ideal_hits,
        out.ideal_misses,
        phase_mean_ns(profile, Phase::IdealSim) / 1e3,
        BASELINE_IDEAL_MEAN_NS / 1e3,
    );
    println!("{}", profile.render());

    let report_path = write_result("exp16_scale.txt", &digest_report(&out))?;
    let profile_path = write_result("PROFILE_exp16.json", &profile.to_json())?;
    let bench_path = write_result("BENCH_exp16.json", &bench_json(&out, profile, hot_allocs))?;
    println!(
        "wrote {}, {} and {}",
        report_path.display(),
        profile_path.display(),
        bench_path.display()
    );
    Ok(())
}
