//! E15-PROFILE — fleet profiler: per-worker, per-phase attribution of
//! sweep wall time.
//!
//! Runs a 256-scenario sweep with every pipeline stage enabled (fault
//! axes, executive cross-validation, static verification, telemetry
//! traces) and the fleet profiler on, then splits the artifacts in two:
//!
//! * **Deterministic** — `results/exp15_profile.txt` (the sweep report)
//!   must be byte-identical for any worker count, profiling on or off.
//!   The usual gate applies: `ECL_FLEET_WORKERS=<n>` runs exactly `n`
//!   workers and CI diffs the report across counts; without the variable
//!   the binary runs 1 and 4 workers in-process and asserts identity —
//!   with profiling *on* both times, so the sidecar provably does not
//!   leak into the report.
//! * **Sidecar** — `results/PROFILE_exp15.json` / `.txt` /
//!   `.trace.json` and `results/BENCH_exp15.json` carry the wall-clock
//!   attribution: per-phase totals and latency histograms, per-worker
//!   utilization/idle/claim counters, per-digest schedule-cache lines,
//!   and a worker-lane Chrome trace mergeable with the per-scenario
//!   simulation traces.
//!
//! The binary asserts the two headline claims of the profiler: at least
//! 95% of worker busy time is attributed to named phases (on one worker,
//! busy time is wall time minus pool overhead), and the fault-axis sweep
//! reports `cache_hits > 0` (quantized WCET tables make scenarios repeat
//! adequation inputs).

use ecl_aaa::TimeNs;
use ecl_bench::fleet::{run_sweep, workers_from_env, FaultAxes, SweepConfig, SweepOutput};
use ecl_bench::{dc_motor_loop, split_scenario, write_result};
use ecl_telemetry::{trace, ProfileReport};

/// Attribution threshold asserted by the experiment.
const ATTRIBUTION_FLOOR: f64 = 0.95;

fn config(workers: usize) -> SweepConfig {
    SweepConfig {
        scenario_count: 256,
        workers,
        trace_scenarios: 8,
        faults: FaultAxes {
            frame_loss_rates: vec![0.0, 0.10, 0.30],
            link_outage_rates: vec![0.0, 0.15],
            proc_dropout_rates: vec![0.0, 0.01],
            ..FaultAxes::default()
        },
        validate_executive: true,
        verify_static: true,
        profile: true,
        ..SweepConfig::default()
    }
}

fn sweep(workers: usize) -> Result<SweepOutput, Box<dyn std::error::Error>> {
    let base = split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )?;
    let spec = dc_motor_loop(0.3)?;
    Ok(run_sweep(&spec, &base, &config(workers))?)
}

/// The machine-readable sidecar: wall-clock attribution plus the
/// deterministic cache statistics. NOT diffed across worker counts.
fn bench_json(out: &SweepOutput, profile: &ProfileReport) -> String {
    let mut phases = String::new();
    for (i, p) in profile.phases.iter().enumerate() {
        if i > 0 {
            phases.push(',');
        }
        phases.push_str(&format!(
            "{{\"phase\":\"{}\",\"count\":{},\"total_ns\":{},\"share\":{:.6}}}",
            p.phase.name(),
            p.count,
            p.total_ns,
            p.total_ns as f64 / profile.attributed_ns().max(1) as f64
        ));
    }
    let fraction = profile.attributed_fraction();
    format!(
        "{{\"experiment\":\"exp15_profile\",\
         \"scenarios\":{},\
         \"workers\":{},\
         \"wall_ns\":{},\
         \"busy_ns\":{},\
         \"attributed_ns\":{},\
         \"attributed_fraction\":{fraction:.6},\
         \"attribution_ge_95\":{},\
         \"utilization\":{:.6},\
         \"cache_hits\":{},\"cache_misses\":{},\"cache_digests\":{},\
         \"phases\":[{phases}]}}\n",
        out.summary.scenarios.len(),
        profile.workers.len(),
        profile.wall_ns,
        profile.busy_ns(),
        profile.attributed_ns(),
        fraction >= ATTRIBUTION_FLOOR,
        profile.utilization(),
        out.summary.cache_hits,
        out.summary.cache_misses,
        profile.cache.len(),
    )
}

fn check(out: &SweepOutput) {
    let profile = out.profile.as_ref().expect("profiling was requested");
    let fraction = profile.attributed_fraction();
    assert!(
        fraction >= ATTRIBUTION_FLOOR,
        "only {:.2}% of busy time attributed to named phases (need >= {:.0}%)",
        fraction * 100.0,
        ATTRIBUTION_FLOOR * 100.0
    );
    assert!(
        out.summary.cache_hits > 0,
        "fault-axis sweep must report cache hits (quantized WCET tables)"
    );
    assert_eq!(
        out.summary.cache_hits + out.summary.cache_misses,
        out.summary.scenarios.len() as u64,
        "one schedule-cache lookup per scenario"
    );
    assert_eq!(
        profile.cache_lookups(),
        out.summary.scenarios.len() as u64,
        "profiler must observe every cache lookup"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "E15-PROFILE — per-worker, per-phase attribution of sweep wall time (256 scenarios)\n"
    );

    // The deterministic report + the sidecar of the run whose profile we
    // archive. With ECL_FLEET_WORKERS the CI gate diffs the report file
    // across counts; without it, both counts run in-process.
    let out = match workers_from_env()? {
        Some(workers) => {
            println!("profiled sweep on {workers} worker(s) (ECL_FLEET_WORKERS)");
            let out = sweep(workers)?;
            check(&out);
            out
        }
        None => {
            let serial = sweep(1)?;
            let parallel = sweep(4)?;
            assert!(
                serial.summary.render() == parallel.summary.render()
                    && serial.summary.to_json() == parallel.summary.to_json()
                    && serial.actuation_hist == parallel.actuation_hist
                    && serial.traces == parallel.traces,
                "1-worker and 4-worker profiled sweeps must produce identical \
                 deterministic artifacts"
            );
            println!("1-worker vs 4-worker profiled sweep: deterministic artifacts byte-identical");
            check(&serial);
            check(&parallel);
            serial
        }
    };

    let profile = out.profile.as_ref().expect("profiling was requested");
    let rendered = profile.render();
    println!("{rendered}");
    println!("{}", profile.gantt(96));

    // Deterministic artifact (diffed across worker counts by CI).
    let report_path = write_result("exp15_profile.txt", &out.summary.render())?;

    // Wall-clock sidecars.
    let profile_json_path = write_result("PROFILE_exp15.json", &profile.to_json())?;
    let mut profile_text = rendered;
    profile_text.push('\n');
    profile_text.push_str(&profile.gantt(96));
    let profile_text_path = write_result("PROFILE_exp15.txt", &profile_text)?;
    // Worker lanes + the traced scenarios' simulation events in one
    // Chrome trace: the sim-kernel counters land in the same timeline as
    // the profiler's wall-clock lanes.
    let mut events = profile.to_events();
    events.extend(out.traces.events().iter().cloned());
    let trace_path = write_result("PROFILE_exp15.trace.json", &trace::chrome_trace(&events))?;
    let bench_path = write_result("BENCH_exp15.json", &bench_json(&out, profile))?;

    println!(
        "wrote {}, {}, {}, {} and {}",
        report_path.display(),
        profile_json_path.display(),
        profile_text_path.display(),
        trace_path.display(),
        bench_path.display()
    );
    Ok(())
}
