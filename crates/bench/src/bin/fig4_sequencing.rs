//! F4 — paper Fig. 4: sequencing translation.
//!
//! Builds the paper's three-operation sequence F1;F2;F3 on one processor,
//! translates the schedule into a chain of Event Delay blocks, and
//! verifies that every co-simulated completion instant equals the
//! schedule's instant, over several periods.

use ecl_aaa::{adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb};
use ecl_bench::table;
use ecl_blocks::{Constant, Scope};
use ecl_core::delays::{self, DelayGraphConfig};
use ecl_sim::{Model, SimOptions, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's sequence with representative WCETs.
    let durations_ms = [5i64, 3, 2];
    let mut alg = AlgorithmGraph::new();
    let f1 = alg.add_function("F1");
    let f2 = alg.add_function("F2");
    let f3 = alg.add_function("F3");
    alg.add_edge(f1, f2, 1)?;
    alg.add_edge(f2, f3, 1)?;
    let mut arch = ArchitectureGraph::new();
    arch.add_processor("p0", "arm");
    let mut db = TimingDb::new();
    for (op, ms) in [f1, f2, f3].into_iter().zip(durations_ms) {
        db.set_default(op, TimeNs::from_millis(ms));
    }
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
    schedule.validate(&alg, &arch)?;

    let period = TimeNs::from_millis(20);
    let mut model = Model::new();
    let dg = delays::build(
        &mut model,
        &alg,
        &arch,
        &schedule,
        period,
        DelayGraphConfig::default(),
    )?;
    let c = model.add_block("c", Constant::new(0.0));
    let mut scopes = Vec::new();
    for op in [f1, f2, f3] {
        let sc = model.add_block(format!("done_{}", alg.name(op)), Scope::new());
        model.connect(c, 0, sc, 0)?;
        dg.activate_on_completion(&mut model, op, sc, 0)?;
        scopes.push((op, sc));
    }
    let periods = 4i64;
    let mut sim = Simulator::new(model, SimOptions::default())?;
    let r = sim.run(period * periods - TimeNs::from_nanos(1))?;

    println!("F4 — sequencing: schedule instants vs graph-of-delays events");
    println!("schedule:\n{}", schedule.render(&alg, &arch));

    let mut rows = Vec::new();
    let mut all_match = true;
    for k in 0..periods {
        for &(op, sc) in &scopes {
            let scheduled = schedule.slot(op).expect("scheduled").end + period * k;
            let observed = r.activation_times(sc, Some(0))[k as usize];
            all_match &= scheduled == observed;
            rows.push(vec![
                k.to_string(),
                alg.name(op).to_string(),
                format!("{scheduled}"),
                format!("{observed}"),
                if scheduled == observed {
                    "ok"
                } else {
                    "MISMATCH"
                }
                .into(),
            ]);
        }
    }
    println!(
        "{}",
        table(&["k", "op", "schedule end", "co-sim event", "check"], &rows)
    );
    println!("all instants match: {all_match}");
    Ok(())
}
