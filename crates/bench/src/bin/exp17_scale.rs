//! E17-SCALE — the fleet at 10⁶ scenarios: scheduled-run memoization by
//! `(loop × schedule × fault-plan)` content digest.
//!
//! Runs a 1 000 000-scenario sweep of the standard DC-motor split loop
//! (light pipeline, fleet profiler on) and checks the claims that push
//! the fleet one order of magnitude past E16-SCALE:
//!
//! * **Scheduled-run memoization** — the graph-of-delays co-simulation
//!   is pure in `(loop spec, schedule, fault plan)`, and the sweep's
//!   quantized axes (WCET tables × policies × period scales) bound that
//!   key space to ≤ 96 digests. The `ScheduledRunCache` therefore
//!   answers all but ~10⁻⁴ of the 10⁶ lookups with an `Arc` clone.
//!   Asserted: one lookup per scenario, misses bounded by the axis
//!   product, hit rate ≥ 99.9%.
//! * **Throughput** — the profiled 4-worker sweep clears 3× the E16
//!   baseline (`results/BENCH_exp16.json`: 100 000 scenarios in
//!   25.751 s → 3883.3 scenarios/s), which still ran one full
//!   co-simulation per scenario.
//! * **Allocation-free hot loop** — [`ecl_sim::EngineStats::hot_allocs`]
//!   stays 0 across every co-simulation flavour the fleet uses,
//!   including the faulty replay, greppable from
//!   `results/BENCH_exp17.json` by the CI gate.
//!
//! Artifacts follow the E16 split:
//!
//! * **Deterministic** — `results/exp17_scale.txt`, a digest report
//!   (FNV-64 of the rendered summary, the JSON summary and the merged
//!   histogram, plus the order-invariant cache/memo counters). CI diffs
//!   this file across `ECL_FLEET_WORKERS` counts; without the variable
//!   the binary runs 1 and 4 workers in-process and asserts identity
//!   directly on the underlying artifacts.
//! * **Sidecar** — `results/PROFILE_exp17.json` (per-phase wall-clock
//!   attribution with the scheduled-memo lookup channel) and
//!   `results/BENCH_exp17.json` (throughput, memo and race evidence vs
//!   the E16 baseline).

use ecl_aaa::{adequation, AdequationOptions, Fnv1a, TimeNs};
use ecl_bench::fleet::{run_sweep, workers_from_env, SweepConfig, SweepOutput};
use ecl_bench::{dc_motor_loop, split_scenario, write_result, SplitScenario};
use ecl_core::cosim::{self, LoopSpec};
use ecl_core::faults::{FaultConfig, FaultPlan};
use ecl_telemetry::{Phase, ProfileReport};

/// Scenario count: one order of magnitude past E16-SCALE's 10⁵.
const SCENARIOS: usize = 1_000_000;

/// E16 baseline throughput from `results/BENCH_exp16.json`: 100 000
/// scenarios, 4 workers, wall 25.751031615 s.
const BASELINE_SCENARIOS_PER_S: f64 = 100_000.0 / 25.751_031_615;

/// Required improvement factor for the throughput claim.
const SPEEDUP_FLOOR: f64 = 3.0;

/// Minimum scheduled-memo hit rate: the quantized axes leave ≤ 96
/// distinct keys under 10⁶ lookups, so anything below 99.9% means the
/// digest is unstable.
const HIT_RATE_FLOOR: f64 = 0.999;

fn config(workers: usize) -> SweepConfig {
    SweepConfig {
        scenario_count: SCENARIOS,
        workers,
        trace_scenarios: 0,
        profile: true,
        memoize_scheduled: true,
        ..SweepConfig::default()
    }
}

/// Upper bound on distinct `(loop × schedule × fault-plan)` digests the
/// sweep can produce: every key is a pure function of the (quantized)
/// WCET table, the mapping policy and the period scale.
fn key_space(config: &SweepConfig) -> u64 {
    (config.wcet_tables * config.policies.len() * config.period_scales.len()) as u64
}

fn base() -> Result<SplitScenario, Box<dyn std::error::Error>> {
    Ok(split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )?)
}

/// The E16 loop: one sampling period per scenario keeps 10⁶ metric
/// passes (the per-scenario work the memo cannot share) in minutes.
fn spec() -> Result<LoopSpec, Box<dyn std::error::Error>> {
    Ok(dc_motor_loop(0.05)?)
}

fn sweep(workers: usize) -> Result<SweepOutput, Box<dyn std::error::Error>> {
    Ok(run_sweep(&spec()?, &base()?, &config(workers))?)
}

fn fnv64(bytes: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes.as_bytes());
    h.finish()
}

/// The deterministic digest report (diffed across worker counts by CI).
/// Race counters are interleaving-dependent and deliberately absent.
fn digest_report(out: &SweepOutput) -> String {
    format!(
        "E17-SCALE deterministic digest (diffed across ECL_FLEET_WORKERS)\n\
         scenarios: {}\n\
         summary_render_fnv64: {:#018x}\n\
         summary_json_fnv64: {:#018x}\n\
         actuation_hist_fnv64: {:#018x}\n\
         robustness_margin: {:.6}\n\
         schedule_cache: hits={} misses={}\n\
         ideal_memo: hits={} misses={}\n\
         scheduled_memo: hits={} misses={}\n",
        out.summary.scenarios.len(),
        fnv64(&out.summary.render()),
        fnv64(&out.summary.to_json()),
        fnv64(&format!("{:?}", out.actuation_hist)),
        out.summary.robustness_margin(),
        out.summary.cache_hits,
        out.summary.cache_misses,
        out.ideal_hits,
        out.ideal_misses,
        out.scheduled_hits,
        out.scheduled_misses,
    )
}

/// Mean wall time of one profile phase, in nanoseconds.
fn phase_mean_ns(profile: &ProfileReport, phase: Phase) -> f64 {
    profile
        .phases
        .iter()
        .find(|s| s.phase == phase)
        .map_or(0.0, |s| s.total_ns as f64 / s.count.max(1) as f64)
}

/// Runs every co-simulation flavour the sweep uses on this loop —
/// ideal, scheduled and faulty replay — and returns the summed
/// `hot_allocs` counter: the machine-checkable evidence that the
/// kernel's event hot path allocates nothing once its scratch buffers
/// are warm.
fn hot_allocs_probe() -> Result<u64, Box<dyn std::error::Error>> {
    let spec = spec()?;
    let base = base()?;
    let mut total = 0;
    for scale in config(1).period_scales {
        let mut scaled = spec.clone();
        scaled.ts = spec.ts * scale;
        total += cosim::run_ideal(&scaled)?.stats.hot_allocs;
    }
    let schedule = adequation(
        &base.alg,
        &base.arch,
        &base.db,
        AdequationOptions::default(),
    )?;
    let run = cosim::run_scheduled(&spec, &base.alg, &base.io, &schedule, &base.arch)?;
    total += run.stats.hot_allocs;
    let plan = FaultPlan::generate(
        &FaultConfig {
            seed: 0x000e_c117,
            frame_loss_rate: 0.25,
            max_retries: 2,
            link_outage_rate: 0.1,
            outage_periods: 2,
            proc_dropout_rate: 0.0,
        },
        &schedule,
        &base.arch,
        8,
    )?;
    let faulty =
        cosim::run_scheduled_faulty(&spec, &base.alg, &base.io, &schedule, &base.arch, plan)?;
    total += faulty.stats.hot_allocs;
    Ok(total)
}

/// Wall-clock evidence sidecar (never diffed across worker counts).
fn bench_json(out: &SweepOutput, profile: &ProfileReport, hot_allocs: u64) -> String {
    let wall_s = profile.wall_ns as f64 / 1e9;
    let throughput = out.summary.scenarios.len() as f64 / wall_s;
    let throughput_x = throughput / BASELINE_SCENARIOS_PER_S;
    let lookups = out.scheduled_hits + out.scheduled_misses;
    let hit_rate = out.scheduled_hits as f64 / lookups.max(1) as f64;
    let cosim_mean_ns = phase_mean_ns(profile, Phase::Cosim);
    format!(
        "{{\"experiment\":\"exp17_scale\",\
         \"scenarios\":{},\
         \"workers\":{},\
         \"wall_ns\":{},\
         \"scenarios_per_s\":{throughput:.1},\
         \"baseline_scenarios_per_s\":{BASELINE_SCENARIOS_PER_S:.1},\
         \"throughput_x\":{throughput_x:.2},\
         \"throughput_ge_3x\":{},\
         \"scheduled_hits\":{},\"scheduled_misses\":{},\
         \"scheduled_hit_rate\":{hit_rate:.6},\
         \"scheduled_hit_rate_ge_999\":{},\
         \"cosim_mean_ns\":{cosim_mean_ns:.1},\
         \"ideal_hits\":{},\"ideal_misses\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\
         \"schedule_races\":{},\"ideal_races\":{},\"scheduled_races\":{},\
         \"hot_allocs\":{hot_allocs},\
         \"hot_allocs_zero\":{}}}\n",
        out.summary.scenarios.len(),
        profile.workers.len(),
        profile.wall_ns,
        throughput_x >= SPEEDUP_FLOOR,
        out.scheduled_hits,
        out.scheduled_misses,
        hit_rate >= HIT_RATE_FLOOR,
        out.ideal_hits,
        out.ideal_misses,
        out.summary.cache_hits,
        out.summary.cache_misses,
        out.races[0],
        out.races[1],
        out.races[2],
        hot_allocs == 0,
    )
}

/// Worker-count-independent assertions.
fn check(out: &SweepOutput) {
    assert_eq!(out.summary.scenarios.len(), SCENARIOS);
    assert_eq!(
        out.scheduled_hits + out.scheduled_misses,
        SCENARIOS as u64,
        "one scheduled-memo lookup per scenario"
    );
    let keys = key_space(&config(1));
    assert!(
        out.scheduled_misses <= keys,
        "at most one co-simulation per (table x policy x period scale) \
         key, got {} misses over a {keys}-key space",
        out.scheduled_misses
    );
    let hit_rate = out.scheduled_hits as f64 / SCENARIOS as f64;
    assert!(
        hit_rate >= HIT_RATE_FLOOR,
        "scheduled-memo hit rate {hit_rate:.4} below the {HIT_RATE_FLOOR} floor"
    );
    assert_eq!(
        out.ideal_hits + out.ideal_misses,
        SCENARIOS as u64,
        "one ideal-memo lookup per scenario"
    );
    assert!(
        out.ideal_misses <= config(1).period_scales.len() as u64,
        "at most one ideal run per period scale, got {} misses",
        out.ideal_misses
    );
    let profile = out.profile.as_ref().expect("profiling was requested");
    // The memo collapses the named phases to microseconds, so the
    // pool's fixed per-task bookkeeping (clock reads, span buffers,
    // batch claim/publish) is a legitimately larger slice than at E16's
    // scale — the floor here guards against dropped phases, not
    // harness overhead. Measured at 10⁶ scenarios: ~83% attributed on
    // 4 workers, ~72% on 1.
    let fraction = profile.attributed_fraction();
    assert!(
        fraction >= 0.65,
        "only {:.2}% of busy time attributed to named phases",
        fraction * 100.0
    );
}

/// Throughput assertion, made only for the 4-worker profiled sweep (the
/// configuration the E16 baseline was measured with).
fn check_throughput(out: &SweepOutput) {
    let profile = out.profile.as_ref().expect("profiling was requested");
    let throughput = out.summary.scenarios.len() as f64 / (profile.wall_ns as f64 / 1e9);
    assert!(
        throughput >= SPEEDUP_FLOOR * BASELINE_SCENARIOS_PER_S,
        "4-worker sweep at {throughput:.0} scenarios/s is not >= 3x the \
         {BASELINE_SCENARIOS_PER_S:.0}/s E16 baseline"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E17-SCALE — 10\u{2076}-scenario fleet sweep (memoized scheduled co-simulation)\n");

    let hot_allocs = hot_allocs_probe()?;
    assert_eq!(
        hot_allocs, 0,
        "the event hot path allocated {hot_allocs} times"
    );
    println!("hot-path allocation counter across all co-simulation flavours: 0");

    let out = match workers_from_env()? {
        Some(workers) => {
            println!("sweeping {SCENARIOS} scenarios on {workers} worker(s) (ECL_FLEET_WORKERS)");
            let out = sweep(workers)?;
            check(&out);
            if workers == 4 {
                check_throughput(&out);
            }
            out
        }
        None => {
            let serial = sweep(1)?;
            check(&serial);
            let parallel = sweep(4)?;
            check(&parallel);
            check_throughput(&parallel);
            assert!(
                serial.summary == parallel.summary
                    && serial.summary.render() == parallel.summary.render()
                    && serial.summary.to_json() == parallel.summary.to_json()
                    && serial.actuation_hist == parallel.actuation_hist
                    && serial.traces == parallel.traces,
                "1-worker and 4-worker sweeps must produce identical \
                 deterministic artifacts"
            );
            println!("1-worker vs 4-worker sweep: deterministic artifacts byte-identical");
            // Archive the parallel run: its sidecar carries the profile
            // the throughput claim was checked against.
            parallel
        }
    };

    let profile = out.profile.as_ref().expect("profiling was requested");
    let wall_s = profile.wall_ns as f64 / 1e9;
    println!(
        "{} scenarios in {wall_s:.1} s on {} worker(s): {:.0} scenarios/s \
         ({:.1}x the E16 baseline)",
        out.summary.scenarios.len(),
        profile.workers.len(),
        out.summary.scenarios.len() as f64 / wall_s,
        out.summary.scenarios.len() as f64 / wall_s / BASELINE_SCENARIOS_PER_S,
    );
    println!(
        "scheduled memo: {} hits / {} misses (hit rate {:.4}%); \
         co-simulation mean {:.1} us; races s/i/c {}/{}/{}",
        out.scheduled_hits,
        out.scheduled_misses,
        100.0 * out.scheduled_hits as f64 / SCENARIOS as f64,
        phase_mean_ns(profile, Phase::Cosim) / 1e3,
        out.races[0],
        out.races[1],
        out.races[2],
    );
    println!("{}", profile.render());

    let report_path = write_result("exp17_scale.txt", &digest_report(&out))?;
    let profile_path = write_result("PROFILE_exp17.json", &profile.to_json())?;
    let bench_path = write_result("BENCH_exp17.json", &bench_json(&out, profile, hot_allocs))?;
    println!(
        "wrote {}, {} and {}",
        report_path.display(),
        profile_path.display(),
        bench_path.display()
    );
    Ok(())
}
