//! E12 — analytic delay margin vs co-simulated latency tolerance.
//!
//! Classical loop-shaping predicts that a loop tolerates at most
//! `τ_max = φ_m / ω_gc` of extra delay before instability. The
//! methodology's co-simulation measures the *actual* tolerance of the
//! sampled distributed loop. This experiment computes both for the DC
//! motor under an increasingly aggressive LQR and checks the expected
//! relation: the co-simulated serviceability threshold (latency at which
//! the cost degrades by 10%) shrinks as the analytic margin shrinks —
//! sampling and the ZOH consume part of the continuous-time margin, and
//! degradation long precedes outright instability.

use ecl_aaa::{adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb};
use ecl_bench::table;
use ecl_control::{c2d_zoh, dlqr, frequency, plants};
use ecl_core::cosim::{self, DisturbanceKind, LoopSpec};
use ecl_core::translate::IoMap;
use ecl_linalg::Mat;

/// Single-processor schedule whose actuation latency is exactly `lat`.
fn latency_schedule(
    n_inputs: usize,
    lat: TimeNs,
) -> (AlgorithmGraph, IoMap, ArchitectureGraph, ecl_aaa::Schedule) {
    let law = ecl_core::translate::ControlLawSpec::monolithic("law", n_inputs, 1);
    let (alg, io) = law.to_algorithm().expect("valid");
    let mut arch = ArchitectureGraph::new();
    arch.add_processor("ecu", "arm");
    let tiny = TimeNs::from_micros(1);
    let mut db = TimingDb::new();
    for &s in io.sensors.iter().chain(&io.actuators) {
        db.set_default(s, tiny);
    }
    let compute = lat - tiny * (n_inputs as i64 + 1);
    db.set_default(io.stages[0], compute.max(tiny));
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");
    (alg, io, arch, schedule)
}

/// Finds (by bisection over the latency) the largest actuation latency the
/// co-simulated loop tolerates before its cost exceeds `blowup` times the
/// ideal cost.
fn cosim_tolerance(spec: &LoopSpec, ideal_cost: f64, ts: TimeNs, blowup: f64) -> TimeNs {
    let stable = |lat: TimeNs| -> bool {
        let (alg, io, arch, schedule) = latency_schedule(spec.plant.state_dim(), lat);
        match cosim::run_scheduled(spec, &alg, &io, &schedule, &arch) {
            Ok(run) => run.cost.is_finite() && run.cost < blowup * ideal_cost,
            Err(_) => false,
        }
    };
    let mut lo = TimeNs::from_micros(10);
    let mut hi = ts - TimeNs::from_micros(10);
    if !stable(lo) {
        return TimeNs::ZERO;
    }
    if stable(hi) {
        return hi;
    }
    for _ in 0..12 {
        let mid = (lo + hi) / 2;
        if stable(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = plants::dc_motor();
    let ts = plant.ts;
    println!("E12 — analytic delay margin vs co-simulated latency tolerance");
    println!(
        "plant: dc-motor, Ts = {} ms, serviceability = cost within +10% of ideal\n",
        ts * 1e3
    );

    let mut rows = Vec::new();
    for r_weight in [1e-2, 1e-3, 1e-4, 1e-5] {
        let dss = c2d_zoh(&plant.sys, ts)?;
        let lqr = dlqr(&dss, &Mat::diag(&[10.0, 1.0]), &Mat::diag(&[r_weight]))?;
        let spec = LoopSpec {
            plant: plant.sys.clone(),
            n_controls: 1,
            x0: vec![1.0, 0.0],
            feedback: lqr.k.clone(),
            input_memory: None,
            ts,
            horizon: 2.0,
            q_weight: 1.0,
            r_weight,
            disturbance: DisturbanceKind::None,
        };
        let ideal = cosim::run_ideal(&spec)?;

        // Analytic: continuous loop transfer K (sI - A)^-1 B.
        let loop_tf = frequency::state_feedback_loop(&plant.sys, &lqr.k)?;
        let m = frequency::margins(&loop_tf, 1e-3, 1e5)?;
        let (wgc, pm, dm) = match m {
            Some(m) => (m.omega_gc, m.phase_margin_deg, m.delay_margin),
            None => (f64::NAN, f64::NAN, f64::INFINITY),
        };
        // The sampled loop spends ~Ts/2 of delay margin on the ZOH.
        let dm_sampled = dm - ts / 2.0;

        let tolerance = cosim_tolerance(&spec, ideal.cost, TimeNs::from_secs_f64(ts), 1.10);
        rows.push(vec![
            format!("{r_weight:.0e}"),
            format!("{wgc:.1}"),
            format!("{pm:.0}"),
            format!("{:.1}", dm * 1e3),
            format!("{:.1}", dm_sampled.max(0.0) * 1e3),
            format!("{:.1}", tolerance.as_secs_f64() * 1e3),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "R weight",
                "wgc [rad/s]",
                "PM [deg]",
                "analytic tau_max [ms]",
                "minus ZOH [ms]",
                "co-sim tolerance [ms]"
            ],
            &rows
        )
    );
    println!("\nexpected shape: faster loops (smaller R) have higher crossover");
    println!("and smaller delay margins, and the co-simulated serviceability");
    println!("threshold shrinks in the same order. The threshold sits well");
    println!("below the instability margin (10% degradation long precedes");
    println!("divergence) and is capped at Ts minus the I/O WCETs — the");
    println!("schedule must fit the period, so the gentle R = 1e-2 loop never");
    println!("reaches its threshold within one period.");
    Ok(())
}
