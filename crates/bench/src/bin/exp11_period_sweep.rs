//! E11 — cost vs sampling period under a fixed implementation.
//!
//! With the computation and bus times fixed, sweeping the sampling period
//! exposes the design trade-off the methodology lets engineers explore
//! early: the implementation penalty grows as the schedule fills the
//! period, and the loop becomes infeasible (schedule overrun) below a
//! crossover period — found in simulation, not on the bench.

use ecl_aaa::{adequation, AdequationOptions, TimeNs};
use ecl_bench::{lqr_loop, split_scenario, table};
use ecl_control::plants;
use ecl_core::cosim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fixed implementation: ~8.5 ms of computation + bus per period.
    let bus = TimeNs::from_millis(2);
    let io_wcet = TimeNs::from_micros(100);
    let compute = TimeNs::from_millis(4);
    let scenario = split_scenario(2, 1, bus, io_wcet, compute)?;
    let schedule = adequation(
        &scenario.alg,
        &scenario.arch,
        &scenario.db,
        AdequationOptions::default(),
    )?;
    let makespan = schedule.makespan();
    println!("E11 — cost vs sampling period (fixed schedule, makespan {makespan})\n");

    let plant = plants::dc_motor();
    let mut rows = Vec::new();
    for ts_ms in [100i64, 50, 25, 15, 12, 10, 8] {
        let ts = ts_ms as f64 * 1e-3;
        let spec = lqr_loop(plant.sys.clone(), ts, vec![1.0, 0.0], 1.5)?;
        let ideal = cosim::run_ideal(&spec)?;
        let row = if makespan > TimeNs::from_millis(ts_ms) {
            vec![
                format!("{ts_ms}"),
                format!("{:.6}", ideal.cost),
                "overrun".into(),
                "n/a".into(),
            ]
        } else {
            let run = cosim::run_scheduled(
                &spec,
                &scenario.alg,
                &scenario.io,
                &schedule,
                &scenario.arch,
            )?;
            vec![
                format!("{ts_ms}"),
                format!("{:.6}", ideal.cost),
                format!("{:.6}", run.cost),
                format!("{:+.1}%", (run.cost / ideal.cost - 1.0) * 100.0),
            ]
        };
        rows.push(row);
    }
    println!(
        "{}",
        table(
            &["Ts [ms]", "ideal cost", "implemented cost", "penalty"],
            &rows
        )
    );
    println!("\nexpected shape: the implementation penalty grows monotonically");
    println!("as the fixed schedule fills a shrinking Ts, and the loop becomes");
    println!("infeasible once the makespan ({makespan}) exceeds Ts — the");
    println!("feasibility crossover the co-simulation finds before any");
    println!("hardware exists. (The ideal column stays nearly flat: the");
    println!("well-damped motor gains little from faster sampling while the");
    println!("control-effort term grows slightly.)");
    Ok(())
}
