//! E7 — control cost vs actuation jitter (conditioning-induced).
//!
//! A mode-switching computation alternates between a fast and a slow
//! branch every period. The *mean* latency is held constant while the
//! spread (jitter) grows, and the co-simulated cost is compared against a
//! constant-latency run at the same mean — quantifying what an
//! average-delay model misses and the paper's §3.2.2 captures.

use ecl_aaa::{adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb};
use ecl_bench::{lqr_loop, table};
use ecl_blocks::Sine;
use ecl_control::plants;
use ecl_core::cosim;
use ecl_core::delays::{ConditionSource, DelayGraphConfig};
use ecl_core::translate::IoMap;

struct Case {
    alg: AlgorithmGraph,
    io: IoMap,
    mode: ecl_aaa::OpId,
    arch: ArchitectureGraph,
    schedule: ecl_aaa::Schedule,
}

/// A 2-sensor law whose compute stage has two branches with durations
/// `mean ± spread/2`.
fn conditioned_case(period: TimeNs, mean_frac: f64, spread_frac: f64) -> Case {
    let mean = (period.as_nanos() as f64 * mean_frac) as i64;
    let spread = (period.as_nanos() as f64 * spread_frac) as i64;
    let fast_ns = (mean - spread / 2).max(1000);
    let slow_ns = mean + spread / 2;

    let mut alg = AlgorithmGraph::new();
    let s0 = alg.add_sensor("in0");
    let s1 = alg.add_sensor("in1");
    let mode = alg.add_function("mode");
    let fast = alg.add_function("fast");
    let slow = alg.add_function("slow");
    let merge = alg.add_function("merge");
    let a0 = alg.add_actuator("out0");
    alg.add_edge(s0, mode, 4).expect("ok");
    alg.add_edge(s1, mode, 4).expect("ok");
    alg.set_condition(fast, mode, 0).expect("ok");
    alg.set_condition(slow, mode, 1).expect("ok");
    alg.add_edge(fast, merge, 4).expect("ok");
    alg.add_edge(slow, merge, 4).expect("ok");
    alg.add_edge(merge, a0, 4).expect("ok");
    let io = IoMap {
        sensors: vec![s0, s1],
        stages: vec![mode, fast, slow, merge],
        actuators: vec![a0],
    };

    let mut arch = ArchitectureGraph::new();
    arch.add_processor("ecu", "arm");
    let tiny = TimeNs::from_micros(20);
    let mut db = TimingDb::new();
    for op in [s0, s1, mode, merge, a0] {
        db.set_default(op, tiny);
    }
    db.set_default(fast, TimeNs::from_nanos(fast_ns));
    db.set_default(slow, TimeNs::from_nanos(slow_ns));
    let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok");
    Case {
        alg,
        io,
        mode,
        arch,
        schedule,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = plants::dc_motor();
    let ts = plant.ts;
    let period = TimeNs::from_secs_f64(ts);
    let spec = lqr_loop(plant.sys, ts, vec![1.0, 0.0], 1.5)?;
    let ideal = cosim::run_ideal(&spec)?;

    println!("E7 — cost vs actuation jitter at constant mean latency (0.4·Ts)\n");
    let mean_frac = 0.4;
    let mut rows = Vec::new();
    for spread_frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let case = conditioned_case(period, mean_frac, spread_frac);
        let mode = case.mode;
        let run = cosim::run_scheduled_with(
            &spec,
            &case.alg,
            &case.io,
            &case.schedule,
            &case.arch,
            |model| {
                // Branch alternates each period.
                let osc = model.add_block(
                    "mode_signal",
                    Sine::new(1.0, 1.0 / (2.0 * ts)).with_phase(std::f64::consts::FRAC_PI_4),
                );
                let mut cfg = DelayGraphConfig::default();
                cfg.condition_sources.insert(
                    mode,
                    ConditionSource {
                        block: osc,
                        output: 0,
                        mapping: Box::new(|v| usize::from(v < 0.0)),
                    },
                );
                Ok(cfg)
            },
        )?;
        let rep = run.latency_report()?;
        let stats = rep.actuation[0].stats().expect("non-empty");
        rows.push(vec![
            format!("{:.0}%", spread_frac * 100.0),
            format!("{}", stats.mean),
            format!("{}", stats.jitter),
            format!("{:.6}", run.cost),
            format!("{:+.2}%", (run.cost / ideal.cost - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        table(
            &["spread/Ts", "mean La", "jitter", "cost", "vs ideal"],
            &rows
        )
    );
    println!("\nideal cost (zero latency): {:.6}", ideal.cost);
    println!("row 1 (0% spread) is the constant-mean-latency baseline: the");
    println!("extra degradation below it is the pure jitter effect an");
    println!("average-delay approximation cannot see.");
    Ok(())
}
