//! F2 — paper Fig. 2: plant and controller interconnection under the
//! stroboscopic model.
//!
//! Simulates the ideal (zero-latency, perfectly periodic) DC-motor loop
//! and prints the sampled closed-loop response, verifying the
//! stroboscopic assumptions: `Ls_j(k) = La_j(k) = 0` for every `j, k`.

use ecl_bench::{dc_motor_loop, table};
use ecl_core::cosim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = dc_motor_loop(1.0)?;
    let run = cosim::run_ideal(&spec)?;

    println!("F2 — ideal hybrid simulation (stroboscopic model)");
    println!("plant: dc-motor, Ts = {} ms\n", spec.ts * 1e3);

    // Sampled response every 2 periods.
    let x0 = run.result.signal("x0").expect("probed");
    let u0 = run.result.signal("u0").expect("probed");
    let mut rows = Vec::new();
    for k in (0..20).step_by(2) {
        let t = k as f64 * spec.ts;
        rows.push(vec![
            format!("{t:.2}"),
            format!("{:+.4}", x0.sample(t).unwrap_or(0.0)),
            format!("{:+.4}", u0.sample(t).unwrap_or(0.0)),
        ]);
    }
    println!("{}", table(&["t [s]", "omega [rad/s]", "u [V]"], &rows));

    // Stroboscopic check: every sampling and actuation at exactly k*Ts.
    let rep = run.latency_report()?;
    let zero = rep
        .sampling
        .iter()
        .chain(&rep.actuation)
        .all(|s| s.values().iter().all(|v| v.is_zero()));
    println!("all Ls_j(k) = La_j(k) = 0 : {zero}");
    println!("quadratic cost            : {:.6}", run.cost);
    Ok(())
}
