//! E19-ENVELOPE — fault-envelope abstract interpretation as a fleet
//! pre-pass: static pruning of a 10⁶-scenario sweep with a sampled
//! soundness audit.
//!
//! The envelope layer (`ecl_verify::fault_envelope`, DESIGN.md §15)
//! computes sound `[lo, hi]` completion bounds for an entire fault
//! *family* — every plan any seed can draw — in one static pass. This
//! experiment exercises it in all three integration points:
//!
//! * **Showcase** — the envelope of the standard split deployment under
//!   four families, with the EV4xx diagnostics each verdict carries
//!   (Safe / Unsafe+EV401 / Inconclusive+EV403).
//! * **Static sweep pruning** (`SweepConfig::prune_static`) — scenarios
//!   whose family resolves conclusively skip co-simulation entirely.
//!   The fault axes here carry a zero entry per class, so 1/8 of the
//!   10⁶ scenarios draw the trivial family and prune Safe (~125 000
//!   co-simulations and metric passes never run).
//! * **Sampled soundness audit** — the first `AUDIT` scenario indices
//!   are re-swept *unpruned* as ground truth: every `pruned:safe` row
//!   must be overrun-free, every `pruned:unsafe` row must overrun, and
//!   every simulated row must be byte-identical to the unpruned run.
//!   `prune_unsound` is the number of violations; the CI gate greps
//!   `"prune_unsound_zero":true` from `results/BENCH_exp19.json`.
//!
//! Artifacts follow the E17 split: `results/exp19_envelope.txt` is the
//! deterministic digest report CI diffs across `ECL_FLEET_WORKERS`
//! counts (pruning decisions are a pure function of `(config, index)`,
//! so pruned sweeps stay byte-identical on any pool size), and
//! `results/BENCH_exp19.json` is the wall-clock evidence sidecar.

use ecl_aaa::{adequation, AdequationOptions, Fnv1a, TimeNs};
use ecl_bench::fleet::{run_sweep, workers_from_env, FaultAxes, SweepConfig, SweepOutput};
use ecl_bench::{dc_motor_loop, split_scenario, write_result, SplitScenario};
use ecl_core::cosim::LoopSpec;
use ecl_core::faults::FaultFamily;
use ecl_telemetry::{Phase, ProfileReport};
use ecl_verify::EnvelopeVerdict;

/// Scenario count, matching E17-SCALE's fleet order of magnitude.
const SCENARIOS: usize = 1_000_000;

/// Unpruned ground-truth prefix re-simulated for the soundness audit.
const AUDIT: usize = 2_000;

/// Minimum pruned fraction: each of the three fault classes draws its
/// zero entry with probability 1/2, so 1/8 of scenarios are trivial and
/// every trivial family resolves Safe under the stretched period.
const PRUNE_FLOOR: f64 = 0.10;

fn base() -> Result<SplitScenario, Box<dyn std::error::Error>> {
    Ok(split_scenario(
        2,
        1,
        TimeNs::from_micros(200),
        TimeNs::from_micros(50),
        TimeNs::from_micros(500),
    )?)
}

fn spec() -> Result<LoopSpec, Box<dyn std::error::Error>> {
    Ok(dc_motor_loop(0.05)?)
}

/// Fault axes with a zero entry per class: the zero draws produce
/// trivial families (statically prunable), the non-zero draws produce
/// drop-capable families the envelope must refuse to prune.
fn axes() -> FaultAxes {
    FaultAxes {
        frame_loss_rates: vec![0.0, 0.25],
        link_outage_rates: vec![0.0, 0.10],
        proc_dropout_rates: vec![0.0, 0.05],
        ..FaultAxes::default()
    }
}

fn config(workers: usize, count: usize, prune: bool) -> SweepConfig {
    SweepConfig {
        scenario_count: count,
        workers,
        trace_scenarios: 0,
        profile: true,
        memoize_scheduled: true,
        prune_static: prune,
        faults: axes(),
        ..SweepConfig::default()
    }
}

fn sweep(
    workers: usize,
    count: usize,
    prune: bool,
) -> Result<SweepOutput, Box<dyn std::error::Error>> {
    Ok(run_sweep(
        &spec()?,
        &base()?,
        &config(workers, count, prune),
    )?)
}

fn fnv64(bytes: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes.as_bytes());
    h.finish()
}

/// The envelope of the nominal deployment under four families,
/// rendered with diagnostics — and the verdicts pinned: the abstract
/// interpretation must be exact (Safe/Unsafe) exactly when the family
/// admits no silent completion.
fn envelope_showcase() -> Result<String, Box<dyn std::error::Error>> {
    let base = base()?;
    let schedule = adequation(
        &base.alg,
        &base.arch,
        &base.db,
        AdequationOptions::default(),
    )?;
    let makespan = schedule.makespan();
    let comfortable = TimeNs::from_nanos(makespan.as_nanos() * 3 / 2);
    let infeasible = TimeNs::from_nanos((makespan.as_nanos() / 2).max(1));
    let drops = FaultFamily {
        frame_loss: true,
        max_retries: 0,
        link_outage: true,
        proc_dropout: true,
    };
    let retries = FaultFamily {
        frame_loss: true,
        max_retries: 3,
        link_outage: false,
        proc_dropout: false,
    };
    let cases = [
        (
            "trivial family, feasible period",
            FaultFamily::trivial(),
            comfortable,
        ),
        (
            "trivial family, infeasible period",
            FaultFamily::trivial(),
            infeasible,
        ),
        ("retries family", retries, comfortable),
        ("drop family", drops, comfortable),
    ];
    let mut txt = String::from("== envelope showcase (nominal schedule) ==\n");
    let mut verdicts = Vec::new();
    let mut codes: Vec<Vec<&'static str>> = Vec::new();
    for (label, family, period) in cases {
        let report =
            ecl_verify::fault_envelope(&base.alg, &base.arch, &schedule, period, &family, None);
        txt.push_str(&format!(
            "-- {label} (period {period}): verdict {:?}\n",
            report.verdict()
        ));
        let mut case_codes = Vec::new();
        for d in ecl_verify::envelope_diagnostics(&base.alg, &report) {
            txt.push_str(&format!("   {} {:?}: {}\n", d.code, d.severity, d.message));
            case_codes.push(d.code);
        }
        verdicts.push(report.verdict());
        codes.push(case_codes);
    }
    assert_eq!(
        verdicts,
        [
            EnvelopeVerdict::Safe,
            EnvelopeVerdict::Unsafe,
            EnvelopeVerdict::Inconclusive,
            EnvelopeVerdict::Inconclusive,
        ],
        "showcase verdicts drifted"
    );
    assert!(
        codes[1].contains(&"EV401"),
        "an infeasible period must carry the EV401 lower-bound violation"
    );
    assert!(
        codes[2].contains(&"EV403") && codes[3].contains(&"EV403"),
        "drop-capable families must carry the EV403 absence note"
    );
    Ok(txt)
}

/// The deterministic digest report (diffed across worker counts by CI).
fn digest_report(out: &SweepOutput, showcase: &str) -> String {
    let prune = out.summary.prune.expect("sweep ran with prune_static");
    format!(
        "E19-ENVELOPE deterministic digest (diffed across ECL_FLEET_WORKERS)\n\
         scenarios: {}\n\
         summary_render_fnv64: {:#018x}\n\
         summary_json_fnv64: {:#018x}\n\
         actuation_hist_fnv64: {:#018x}\n\
         robustness_margin: {:.6}\n\
         prune: evaluated={} safe={} unsafe={} simulated={}\n\
         schedule_cache: hits={} misses={}\n\
         scheduled_memo: hits={} misses={}\n\
         \n{showcase}",
        out.summary.scenarios.len(),
        fnv64(&out.summary.render()),
        fnv64(&out.summary.to_json()),
        fnv64(&format!("{:?}", out.actuation_hist)),
        out.summary.robustness_margin(),
        prune.evaluated,
        prune.pruned_safe,
        prune.pruned_unsafe,
        prune.simulated,
        out.summary.cache_hits,
        out.summary.cache_misses,
        out.scheduled_hits,
        out.scheduled_misses,
    )
}

/// Mean wall time of one profile phase, in nanoseconds.
fn phase_mean_ns(profile: &ProfileReport, phase: Phase) -> f64 {
    profile
        .phases
        .iter()
        .find(|s| s.phase == phase)
        .map_or(0.0, |s| s.total_ns as f64 / s.count.max(1) as f64)
}

/// Sampled soundness audit: re-sweeps the first `AUDIT` indices with
/// pruning off and holds every pruned row to the ground truth. Returns
/// `(audited_pruned, prune_unsound)`.
fn audit(out: &SweepOutput) -> Result<(usize, usize), Box<dyn std::error::Error>> {
    let truth = sweep(4, AUDIT, false)?;
    let mut audited_pruned = 0;
    let mut unsound = 0;
    for (p, g) in out
        .summary
        .scenarios
        .iter()
        .take(AUDIT)
        .zip(&truth.summary.scenarios)
    {
        assert_eq!(p.index, g.index, "audit rows out of step");
        if p.label.ends_with(" pruned:safe") {
            audited_pruned += 1;
            if g.overruns != 0 {
                unsound += 1;
            }
        } else if p.label.ends_with(" pruned:unsafe") {
            audited_pruned += 1;
            if g.overruns == 0 {
                unsound += 1;
            }
        } else {
            assert_eq!(p, g, "an unpruned row drifted from the ground truth");
        }
    }
    Ok((audited_pruned, unsound))
}

/// Wall-clock evidence sidecar (never diffed across worker counts).
fn bench_json(
    out: &SweepOutput,
    profile: &ProfileReport,
    audited_pruned: usize,
    unsound: usize,
) -> String {
    let prune = out.summary.prune.expect("sweep ran with prune_static");
    let wall_s = profile.wall_ns as f64 / 1e9;
    let throughput = out.summary.scenarios.len() as f64 / wall_s;
    let pruned = prune.pruned_safe + prune.pruned_unsafe;
    format!(
        "{{\"experiment\":\"exp19_envelope\",\
         \"scenarios\":{},\
         \"workers\":{},\
         \"wall_ns\":{},\
         \"scenarios_per_s\":{throughput:.1},\
         \"prune_evaluated\":{},\
         \"pruned_safe\":{},\
         \"pruned_unsafe\":{},\
         \"simulated\":{},\
         \"prune_fraction\":{:.6},\
         \"pruned_gt_zero\":{},\
         \"audit_scenarios\":{AUDIT},\
         \"audited_pruned\":{audited_pruned},\
         \"prune_unsound\":{unsound},\
         \"prune_unsound_zero\":{},\
         \"envelope_mean_ns\":{:.1},\
         \"cosim_mean_ns\":{:.1}}}\n",
        out.summary.scenarios.len(),
        profile.workers.len(),
        profile.wall_ns,
        prune.evaluated,
        prune.pruned_safe,
        prune.pruned_unsafe,
        prune.simulated,
        pruned as f64 / prune.evaluated.max(1) as f64,
        pruned > 0,
        unsound == 0,
        phase_mean_ns(profile, Phase::Envelope),
        phase_mean_ns(profile, Phase::Cosim),
    )
}

/// Worker-count-independent assertions.
fn check(out: &SweepOutput) {
    assert_eq!(out.summary.scenarios.len(), SCENARIOS);
    let prune = out.summary.prune.expect("sweep ran with prune_static");
    assert_eq!(prune.evaluated, SCENARIOS, "every scenario is evaluated");
    assert_eq!(
        prune.pruned_safe + prune.pruned_unsafe + prune.simulated,
        prune.evaluated,
        "prune counters must partition the sweep"
    );
    let fraction = (prune.pruned_safe + prune.pruned_unsafe) as f64 / SCENARIOS as f64;
    assert!(
        fraction >= PRUNE_FLOOR,
        "only {:.2}% of scenarios pruned (expected ~12.5% trivial draws)",
        fraction * 100.0
    );
    assert_eq!(
        prune.pruned_unsafe, 0,
        "the deterministic period stretch keeps every trivial family feasible"
    );
    let profile = out.profile.as_ref().expect("profiling was requested");
    let envelope_passes = profile
        .phases
        .iter()
        .find(|s| s.phase == Phase::Envelope)
        .map_or(0, |s| s.count);
    assert!(
        envelope_passes > 0,
        "the envelope phase must appear in the profile"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E19-ENVELOPE — fault-envelope pruning of a 10\u{2076}-scenario sweep\n");

    let showcase = envelope_showcase()?;
    println!("{showcase}");

    let out = match workers_from_env()? {
        Some(workers) => {
            println!("sweeping {SCENARIOS} scenarios on {workers} worker(s) (ECL_FLEET_WORKERS)");
            let out = sweep(workers, SCENARIOS, true)?;
            check(&out);
            out
        }
        None => {
            let serial = sweep(1, SCENARIOS, true)?;
            check(&serial);
            let parallel = sweep(4, SCENARIOS, true)?;
            check(&parallel);
            assert!(
                serial.summary == parallel.summary
                    && serial.summary.render() == parallel.summary.render()
                    && serial.summary.to_json() == parallel.summary.to_json()
                    && serial.actuation_hist == parallel.actuation_hist,
                "1-worker and 4-worker pruned sweeps must produce identical \
                 deterministic artifacts"
            );
            println!("1-worker vs 4-worker pruned sweep: deterministic artifacts byte-identical");
            parallel
        }
    };

    let prune = out.summary.prune.expect("sweep ran with prune_static");
    let profile = out.profile.as_ref().expect("profiling was requested");
    let wall_s = profile.wall_ns as f64 / 1e9;
    println!(
        "{} scenarios in {wall_s:.1} s on {} worker(s): {} pruned safe, {} pruned \
         unsafe, {} simulated (envelope pass mean {:.1} us)",
        out.summary.scenarios.len(),
        profile.workers.len(),
        prune.pruned_safe,
        prune.pruned_unsafe,
        prune.simulated,
        phase_mean_ns(profile, Phase::Envelope) / 1e3,
    );

    let (audited_pruned, unsound) = audit(&out)?;
    println!(
        "sampled audit: {AUDIT} ground-truth scenarios, {audited_pruned} pruned rows \
         checked, {unsound} unsound"
    );
    assert!(
        audited_pruned > 0,
        "the audit prefix must contain pruned rows"
    );
    assert_eq!(
        unsound, 0,
        "{unsound} pruned row(s) contradict ground truth"
    );

    let report_path = write_result("exp19_envelope.txt", &digest_report(&out, &showcase))?;
    let bench_path = write_result(
        "BENCH_exp19.json",
        &bench_json(&out, profile, audited_pruned, unsound),
    )?;
    println!(
        "wrote {} and {}",
        report_path.display(),
        bench_path.display()
    );
    Ok(())
}
