//! Criterion benches of the adequation heuristic: scaling with the number
//! of operations and processors, and the policy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_aaa::{
    adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, MappingPolicy, TimeNs,
    TimingDb,
};

/// A layered synthetic algorithm graph: `layers` layers of `width`
/// operations, each depending on two operations of the previous layer.
fn layered(layers: usize, width: usize) -> AlgorithmGraph {
    let mut alg = AlgorithmGraph::new();
    let mut prev = Vec::new();
    for l in 0..layers {
        let mut cur = Vec::new();
        for w in 0..width {
            let op = if l == 0 {
                alg.add_sensor(format!("s{w}"))
            } else if l == layers - 1 {
                alg.add_actuator(format!("a{w}"))
            } else {
                alg.add_function(format!("f{l}_{w}"))
            };
            if l > 0 {
                let p1: &usize = &prev[w % prev.len()];
                let p2: &usize = &prev[(w + 1) % prev.len()];
                for p in [p1, p2] {
                    let src = alg.ops().nth(*p).expect("exists");
                    let _ = alg.add_edge(src, op, 4);
                }
            }
            cur.push(alg.ops().count() - 1);
            let _ = &cur;
        }
        prev = cur;
    }
    alg
}

fn target(n_procs: usize) -> ArchitectureGraph {
    let mut arch = ArchitectureGraph::new();
    let ps: Vec<_> = (0..n_procs)
        .map(|i| arch.add_processor(format!("p{i}"), "arm"))
        .collect();
    if n_procs > 1 {
        arch.add_bus("bus", &ps, TimeNs::from_micros(20), TimeNs::from_micros(1))
            .expect("valid");
    }
    arch
}

fn uniform(alg: &AlgorithmGraph) -> TimingDb {
    let mut db = TimingDb::new();
    for op in alg.ops() {
        db.set_default(op, TimeNs::from_micros(100));
    }
    db
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("adequation_scaling");
    for (layers, width) in [(4usize, 4usize), (6, 8), (8, 12)] {
        let alg = layered(layers, width);
        let db = uniform(&alg);
        for procs in [2usize, 4] {
            let arch = target(procs);
            let id = format!("{}ops_{procs}procs", alg.len());
            g.bench_with_input(BenchmarkId::from_parameter(&id), &id, |bench, _| {
                bench.iter(|| {
                    adequation(&alg, &arch, &db, AdequationOptions::default()).expect("ok")
                })
            });
        }
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let alg = layered(6, 8);
    let db = uniform(&alg);
    let arch = target(3);
    let mut g = c.benchmark_group("adequation_policies");
    for (name, policy) in [
        ("pressure", MappingPolicy::SchedulePressure),
        ("eft", MappingPolicy::EarliestFinish),
        ("random", MappingPolicy::Random { seed: 1 }),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| adequation(&alg, &arch, &db, AdequationOptions { policy }).expect("ok"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling, bench_policies);
criterion_main!(benches);
