//! Criterion benches of the co-simulation pipeline: ideal loop, graph-of-
//! delays synthesis, and the scheduled end-to-end run.

use criterion::{criterion_group, criterion_main, Criterion};
use ecl_aaa::{adequation, AdequationOptions, TimeNs};
use ecl_bench::{dc_motor_loop, split_scenario};
use ecl_core::cosim;
use ecl_core::delays::{self, DelayGraphConfig};
use ecl_sim::Model;

fn bench_ideal(c: &mut Criterion) {
    let spec = dc_motor_loop(1.0).expect("valid");
    c.bench_function("cosim_ideal_1s", |bench| {
        bench.iter(|| cosim::run_ideal(&spec).expect("ok"))
    });
}

fn bench_delay_graph_build(c: &mut Criterion) {
    let scenario = split_scenario(
        4,
        1,
        TimeNs::from_millis(1),
        TimeNs::from_micros(100),
        TimeNs::from_millis(2),
    )
    .expect("valid");
    let schedule = adequation(
        &scenario.alg,
        &scenario.arch,
        &scenario.db,
        AdequationOptions::default(),
    )
    .expect("ok");
    c.bench_function("delay_graph_build", |bench| {
        bench.iter(|| {
            let mut model = Model::new();
            delays::build(
                &mut model,
                &scenario.alg,
                &scenario.arch,
                &schedule,
                TimeNs::from_millis(50),
                DelayGraphConfig::default(),
            )
            .expect("ok")
        })
    });
}

fn bench_scheduled(c: &mut Criterion) {
    let spec = dc_motor_loop(1.0).expect("valid");
    let scenario = split_scenario(
        2,
        1,
        TimeNs::from_millis(4),
        TimeNs::from_micros(200),
        TimeNs::from_millis(10),
    )
    .expect("valid");
    let schedule = adequation(
        &scenario.alg,
        &scenario.arch,
        &scenario.db,
        AdequationOptions::default(),
    )
    .expect("ok");
    c.bench_function("cosim_scheduled_1s", |bench| {
        bench.iter(|| {
            cosim::run_scheduled(
                &spec,
                &scenario.alg,
                &scenario.io,
                &schedule,
                &scenario.arch,
            )
            .expect("ok")
        })
    });
}

criterion_group!(
    benches,
    bench_ideal,
    bench_delay_graph_build,
    bench_scheduled
);
criterion_main!(benches);
