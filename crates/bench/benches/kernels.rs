//! Criterion benches of the numerical kernels: LU, matrix exponential,
//! DARE, RK45 integration, and the event-calendar hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_linalg::{expm, lu::Lu, solve_dare, DareOptions, Mat};
use ecl_sim::ode::{integrate, Integrator};
use ecl_sim::{BlockId, EventCalendar, TimeNs};

fn well_conditioned(n: usize) -> Mat {
    let mut m = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            };
        }
    }
    m
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu");
    for n in [4usize, 8, 16] {
        let a = well_conditioned(n);
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        g.bench_with_input(BenchmarkId::new("factor_solve", n), &n, |bench, _| {
            bench.iter(|| {
                let lu = Lu::factor(&a).expect("nonsingular");
                lu.solve(&b).expect("solvable")
            })
        });
    }
    g.finish();
}

fn bench_expm(c: &mut Criterion) {
    let mut g = c.benchmark_group("expm");
    for n in [2usize, 4, 8] {
        let a = well_conditioned(n).scaled(0.1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| expm(&a).expect("finite"))
        });
    }
    g.finish();
}

fn bench_dare(c: &mut Criterion) {
    let mut g = c.benchmark_group("dare");
    for n in [2usize, 4] {
        // Marginally stable chain with one input: classic LQR shape.
        let mut a = Mat::identity(n);
        for i in 0..n - 1 {
            a[(i, i + 1)] = 0.1;
        }
        let mut b = Mat::zeros(n, 1);
        b[(n - 1, 0)] = 0.1;
        let q = Mat::identity(n);
        let r = Mat::diag(&[1.0]);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| solve_dare(&a, &b, &q, &r, DareOptions::default()).expect("converges"))
        });
    }
    g.finish();
}

fn bench_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("integration");
    // A 4-state oscillator network over 1 s.
    let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| {
        dx[0] = x[1];
        dx[1] = -4.0 * x[0] - 0.1 * x[1];
        dx[2] = x[3];
        dx[3] = -9.0 * x[2] - 0.2 * x[3] + x[0];
    };
    g.bench_function("rk4_h1ms", |bench| {
        bench.iter(|| {
            let mut x = vec![1.0, 0.0, 0.5, 0.0];
            integrate(&mut f, 0.0, 1.0, &mut x, Integrator::Rk4 { h: 1e-3 }).expect("ok");
            x
        })
    });
    g.bench_function("rk45_adaptive", |bench| {
        bench.iter(|| {
            let mut x = vec![1.0, 0.0, 0.5, 0.0];
            integrate(
                &mut f,
                0.0,
                1.0,
                &mut x,
                Integrator::Rk45 {
                    rtol: 1e-8,
                    atol: 1e-10,
                    h_max: 0.01,
                },
            )
            .expect("ok");
            x
        })
    });
    g.finish();
}

fn bench_event_calendar(c: &mut Criterion) {
    c.bench_function("event_calendar_10k", |bench| {
        bench.iter(|| {
            let mut cal = EventCalendar::new();
            for i in 0..10_000i64 {
                // Pseudo-random but deterministic instants.
                cal.schedule(
                    TimeNs::from_nanos((i * 2_654_435_761) % 1_000_000),
                    BlockId::from_index((i % 7) as usize),
                    0,
                );
            }
            let mut last = TimeNs::from_nanos(i64::MIN);
            while let Some(e) = cal.pop() {
                assert!(e.time >= last);
                last = e.time;
            }
            last
        })
    });
}

criterion_group!(
    benches,
    bench_lu,
    bench_expm,
    bench_dare,
    bench_integration,
    bench_event_calendar
);
criterion_main!(benches);
