//! The SynDEx architecture graph: processors and communication media.

use std::fmt;

use ecl_sim::TimeNs;
use serde::{Deserialize, Serialize};

use crate::AaaError;

/// Handle to a processor of an [`ArchitectureGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcId(pub(crate) usize);

impl ProcId {
    /// The raw index of this processor.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Handle to a communication medium of an [`ArchitectureGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MediumId(pub(crate) usize);

impl MediumId {
    /// The raw index of this medium.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MediumId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The sharing semantics of a medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MediumKind {
    /// A broadcast bus (CAN-like): one transfer at a time, every connected
    /// processor observes the data.
    Bus,
    /// A point-to-point link between exactly two processors.
    PointToPoint,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Processor {
    pub(crate) name: String,
    pub(crate) kind: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Medium {
    pub(crate) name: String,
    pub(crate) kind: MediumKind,
    pub(crate) connected: Vec<ProcId>,
    /// Fixed per-transfer latency (arbitration, framing).
    pub(crate) latency: TimeNs,
    /// Transfer time per data unit.
    pub(crate) per_unit: TimeNs,
    /// Data units per frame for framed media (CAN-like): a transfer of
    /// `u` units pays `latency` once per `ceil(u / payload)` frame
    /// instead of once per transfer. `None` keeps the affine tariff.
    pub(crate) frame_payload: Option<u32>,
}

/// The distributed architecture: heterogeneous processors plus buses and
/// point-to-point links with worst-case communication timing.
///
/// # Examples
///
/// ```
/// use ecl_aaa::{ArchitectureGraph, TimeNs};
/// # fn main() -> Result<(), ecl_aaa::AaaError> {
/// let mut arch = ArchitectureGraph::new();
/// let ecu0 = arch.add_processor("ecu0", "arm");
/// let ecu1 = arch.add_processor("ecu1", "dsp");
/// arch.add_bus("can", &[ecu0, ecu1], TimeNs::from_micros(120), TimeNs::from_micros(8))?;
/// assert_eq!(arch.media_between(ecu0, ecu1).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ArchitectureGraph {
    pub(crate) procs: Vec<Processor>,
    pub(crate) media: Vec<Medium>,
}

impl ArchitectureGraph {
    /// Creates an empty architecture.
    pub fn new() -> Self {
        ArchitectureGraph::default()
    }

    /// Adds a processor of the given `kind` (used for WCET grouping in
    /// heterogeneous architectures).
    pub fn add_processor(&mut self, name: impl Into<String>, kind: impl Into<String>) -> ProcId {
        self.procs.push(Processor {
            name: name.into(),
            kind: kind.into(),
        });
        ProcId(self.procs.len() - 1)
    }

    /// Adds a broadcast bus connecting `procs`, with a fixed per-transfer
    /// `latency` and a `per_unit` transfer time.
    ///
    /// # Errors
    ///
    /// * [`AaaError::UnknownProcessor`] for a foreign id.
    /// * [`AaaError::InvalidGraph`] if fewer than two processors are
    ///   connected or one appears twice.
    /// * [`AaaError::InvalidTiming`] for negative timing values.
    pub fn add_bus(
        &mut self,
        name: impl Into<String>,
        procs: &[ProcId],
        latency: TimeNs,
        per_unit: TimeNs,
    ) -> Result<MediumId, AaaError> {
        self.add_medium(name.into(), MediumKind::Bus, procs, latency, per_unit, None)
    }

    /// Adds a framed broadcast bus (CAN-like): a transfer of `u` data
    /// units is segmented into `ceil(u / frame_payload)` frames (at
    /// least one), each paying the fixed `latency` (arbitration +
    /// framing overhead), on top of `per_unit` per data unit. With
    /// `frame_payload` at least the largest transfer, this degenerates
    /// to the affine [`add_bus`](ArchitectureGraph::add_bus) tariff.
    ///
    /// # Errors
    ///
    /// Same as [`ArchitectureGraph::add_bus`], plus
    /// [`AaaError::InvalidGraph`] for a zero `frame_payload`.
    pub fn add_framed_bus(
        &mut self,
        name: impl Into<String>,
        procs: &[ProcId],
        latency: TimeNs,
        per_unit: TimeNs,
        frame_payload: u32,
    ) -> Result<MediumId, AaaError> {
        let name = name.into();
        if frame_payload == 0 {
            return Err(AaaError::InvalidGraph {
                reason: format!("medium '{name}' frame payload must be positive"),
            });
        }
        self.add_medium(
            name,
            MediumKind::Bus,
            procs,
            latency,
            per_unit,
            Some(frame_payload),
        )
    }

    /// Adds a point-to-point link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same as [`ArchitectureGraph::add_bus`].
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        a: ProcId,
        b: ProcId,
        latency: TimeNs,
        per_unit: TimeNs,
    ) -> Result<MediumId, AaaError> {
        self.add_medium(
            name.into(),
            MediumKind::PointToPoint,
            &[a, b],
            latency,
            per_unit,
            None,
        )
    }

    fn add_medium(
        &mut self,
        name: String,
        kind: MediumKind,
        procs: &[ProcId],
        latency: TimeNs,
        per_unit: TimeNs,
        frame_payload: Option<u32>,
    ) -> Result<MediumId, AaaError> {
        for &p in procs {
            self.check_proc(p)?;
        }
        if procs.len() < 2 {
            return Err(AaaError::InvalidGraph {
                reason: format!("medium '{name}' must connect at least two processors"),
            });
        }
        let mut sorted: Vec<_> = procs.to_vec();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != procs.len() {
            return Err(AaaError::InvalidGraph {
                reason: format!("medium '{name}' connects a processor twice"),
            });
        }
        for t in [latency, per_unit] {
            if t.is_negative() {
                return Err(AaaError::InvalidTiming {
                    reason: "medium timing must be non-negative".into(),
                    value: t,
                });
            }
        }
        self.media.push(Medium {
            name,
            kind,
            connected: procs.to_vec(),
            latency,
            per_unit,
            frame_payload,
        });
        Ok(MediumId(self.media.len() - 1))
    }

    /// Number of processors.
    pub fn num_processors(&self) -> usize {
        self.procs.len()
    }

    /// Number of media.
    pub fn num_media(&self) -> usize {
        self.media.len()
    }

    /// Iterates over all processor ids.
    pub fn processors(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.procs.len()).map(ProcId)
    }

    /// Iterates over all medium ids.
    pub fn media(&self) -> impl Iterator<Item = MediumId> + '_ {
        (0..self.media.len()).map(MediumId)
    }

    /// A processor's name.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn proc_name(&self, p: ProcId) -> &str {
        &self.procs[p.0].name
    }

    /// A processor's kind string.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn proc_kind(&self, p: ProcId) -> &str {
        &self.procs[p.0].kind
    }

    /// A medium's name.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn medium_name(&self, m: MediumId) -> &str {
        &self.media[m.0].name
    }

    /// A medium's sharing kind.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn medium_kind(&self, m: MediumId) -> MediumKind {
        self.media[m.0].kind
    }

    /// The processors connected to a medium.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn medium_procs(&self, m: MediumId) -> &[ProcId] {
        &self.media[m.0].connected
    }

    /// Worst-case duration of transferring `data_units` on medium `m`.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn transfer_time(&self, m: MediumId, data_units: u32) -> TimeNs {
        let md = &self.media[m.0];
        let frames = match md.frame_payload {
            None => 1,
            Some(payload) => {
                // ceil(u / payload), at least one frame even for a
                // zero-unit transfer (the frame header still goes out).
                u64::from(data_units).div_ceil(u64::from(payload)).max(1) as i64
            }
        };
        md.latency * frames + md.per_unit * i64::from(data_units)
    }

    /// The media connecting `a` and `b` (both endpoints attached).
    pub fn media_between(&self, a: ProcId, b: ProcId) -> Vec<MediumId> {
        self.media()
            .filter(|&m| {
                let c = &self.media[m.0].connected;
                c.contains(&a) && c.contains(&b)
            })
            .collect()
    }

    /// `true` if every pair of processors shares at least one medium
    /// (single-hop routing, the SynDEx default route model used here).
    pub fn fully_routed(&self) -> bool {
        let ids: Vec<ProcId> = self.processors().collect();
        ids.iter().enumerate().all(|(i, &a)| {
            ids[i + 1..]
                .iter()
                .all(|&b| !self.media_between(a, b).is_empty())
        })
    }

    pub(crate) fn check_proc(&self, p: ProcId) -> Result<(), AaaError> {
        if p.0 < self.procs.len() {
            Ok(())
        } else {
            Err(AaaError::UnknownProcessor { index: p.0 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_ecus() -> (ArchitectureGraph, ProcId, ProcId) {
        let mut arch = ArchitectureGraph::new();
        let a = arch.add_processor("ecu0", "arm");
        let b = arch.add_processor("ecu1", "arm");
        (arch, a, b)
    }

    #[test]
    fn bus_connects_processors() {
        let (mut arch, a, b) = two_ecus();
        let bus = arch
            .add_bus(
                "can",
                &[a, b],
                TimeNs::from_micros(100),
                TimeNs::from_micros(10),
            )
            .unwrap();
        assert_eq!(arch.media_between(a, b), vec![bus]);
        assert_eq!(arch.medium_kind(bus), MediumKind::Bus);
        assert_eq!(arch.medium_name(bus), "can");
        assert_eq!(arch.medium_procs(bus), &[a, b]);
        assert!(arch.fully_routed());
    }

    #[test]
    fn transfer_time_formula() {
        let (mut arch, a, b) = two_ecus();
        let bus = arch
            .add_bus(
                "can",
                &[a, b],
                TimeNs::from_micros(100),
                TimeNs::from_micros(10),
            )
            .unwrap();
        assert_eq!(arch.transfer_time(bus, 0), TimeNs::from_micros(100));
        assert_eq!(arch.transfer_time(bus, 5), TimeNs::from_micros(150));
    }

    #[test]
    fn framed_bus_pays_latency_per_frame() {
        let (mut arch, a, b) = two_ecus();
        let bus = arch
            .add_framed_bus(
                "can",
                &[a, b],
                TimeNs::from_micros(100),
                TimeNs::from_micros(10),
                4,
            )
            .unwrap();
        // Zero units still costs one frame header.
        assert_eq!(arch.transfer_time(bus, 0), TimeNs::from_micros(100));
        // One frame up to the payload size — affine within a frame.
        assert_eq!(arch.transfer_time(bus, 1), TimeNs::from_micros(110));
        assert_eq!(arch.transfer_time(bus, 4), TimeNs::from_micros(140));
        // Crossing the payload boundary adds a second frame header.
        assert_eq!(arch.transfer_time(bus, 5), TimeNs::from_micros(250));
        assert_eq!(arch.transfer_time(bus, 8), TimeNs::from_micros(280));
        assert_eq!(arch.transfer_time(bus, 9), TimeNs::from_micros(390));
    }

    #[test]
    fn framed_bus_with_large_payload_matches_affine_bus() {
        let (mut arch, a, b) = two_ecus();
        let plain = arch
            .add_bus(
                "plain",
                &[a, b],
                TimeNs::from_micros(100),
                TimeNs::from_micros(10),
            )
            .unwrap();
        let framed = arch
            .add_framed_bus(
                "framed",
                &[a, b],
                TimeNs::from_micros(100),
                TimeNs::from_micros(10),
                u32::MAX,
            )
            .unwrap();
        for u in [0, 1, 7, 1000] {
            assert_eq!(arch.transfer_time(plain, u), arch.transfer_time(framed, u));
        }
    }

    #[test]
    fn framed_bus_rejects_zero_payload() {
        let (mut arch, a, b) = two_ecus();
        assert!(arch
            .add_framed_bus("bad", &[a, b], TimeNs::ZERO, TimeNs::ZERO, 0)
            .is_err());
    }

    #[test]
    fn link_is_point_to_point() {
        let (mut arch, a, b) = two_ecus();
        let l = arch
            .add_link("spi", a, b, TimeNs::ZERO, TimeNs::from_micros(1))
            .unwrap();
        assert_eq!(arch.medium_kind(l), MediumKind::PointToPoint);
    }

    #[test]
    fn medium_validation() {
        let (mut arch, a, _b) = two_ecus();
        assert!(arch
            .add_bus("solo", &[a], TimeNs::ZERO, TimeNs::ZERO)
            .is_err());
        assert!(arch
            .add_bus("dup", &[a, a], TimeNs::ZERO, TimeNs::ZERO)
            .is_err());
        assert!(arch
            .add_bus("neg", &[a, ProcId(1)], TimeNs::from_nanos(-1), TimeNs::ZERO)
            .is_err());
        assert!(arch
            .add_bus("ghost", &[a, ProcId(9)], TimeNs::ZERO, TimeNs::ZERO)
            .is_err());
    }

    #[test]
    fn not_fully_routed_without_media() {
        let (arch, _a, _b) = two_ecus();
        assert!(!arch.fully_routed());
        // Single processor is trivially routed.
        let mut solo = ArchitectureGraph::new();
        solo.add_processor("only", "arm");
        assert!(solo.fully_routed());
    }

    #[test]
    fn names_and_kinds() {
        let (arch, a, b) = two_ecus();
        assert_eq!(arch.proc_name(a), "ecu0");
        assert_eq!(arch.proc_kind(b), "arm");
        assert_eq!(arch.num_processors(), 2);
        assert_eq!(arch.num_media(), 0);
    }
}
