//! AAA (Algorithm Architecture Adequation) substrate — a from-scratch
//! reimplementation of the SynDEx system-level CAD core that the DATE 2008
//! methodology paper builds on.
//!
//! SynDEx takes an **algorithm graph** (data-flow operations: sensors,
//! computations, actuators, with conditioning), an **architecture graph**
//! (heterogeneous processors connected by communication media), and a
//! **timing characterization** (WCET of each operation on each processor
//! kind, worst-case communication times per medium), and produces by the
//! *adequation* heuristic an off-line, non-preemptive **static schedule**:
//! a total order of computations per processor and communications per
//! medium, from which deadlock-free distributed executives are generated.
//!
//! This crate provides exactly those artifacts:
//!
//! * [`AlgorithmGraph`] — operations ([`OpKind::Sensor`],
//!   [`OpKind::Function`], [`OpKind::Actuator`]), typed data dependencies,
//!   and conditioning groups (the `if..then..else` of §3.2.2);
//! * [`ArchitectureGraph`] — processors plus broadcast buses and
//!   point-to-point links with latency + per-unit transfer cost;
//! * [`TimingDb`] — WCET table;
//! * [`adequation`] — greedy list scheduling with the *schedule pressure*
//!   cost function (Grandpierre & Sorel), plus earliest-finish-time and
//!   seeded-random policies for ablation;
//! * [`Schedule`] — validated static schedule with makespan, utilization
//!   and I/O-instant analysis;
//! * [`ScheduleCache`] — content-addressed memoization of adequation
//!   results keyed by [`schedule_digest`], for scenario sweeps that
//!   re-schedule identical (algorithm, architecture, WCET, policy) inputs;
//! * [`codegen`] — per-processor synchronized executives with a
//!   deadlock-freedom check.
//!
//! # Examples
//!
//! ```
//! use ecl_aaa::{adequation, AdequationOptions, AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb};
//!
//! # fn main() -> Result<(), ecl_aaa::AaaError> {
//! let mut alg = AlgorithmGraph::new();
//! let s = alg.add_sensor("sample");
//! let f = alg.add_function("control");
//! let a = alg.add_actuator("actuate");
//! alg.add_edge(s, f, 1)?;
//! alg.add_edge(f, a, 1)?;
//!
//! let mut arch = ArchitectureGraph::new();
//! let p0 = arch.add_processor("ecu0", "arm");
//! let p1 = arch.add_processor("ecu1", "arm");
//! arch.add_bus("can", &[p0, p1], TimeNs::from_micros(100), TimeNs::from_micros(50))?;
//!
//! let mut db = TimingDb::new();
//! for op in alg.ops() {
//!     db.set_default(op, TimeNs::from_micros(200));
//! }
//! let schedule = adequation(&alg, &arch, &db, AdequationOptions::default())?;
//! schedule.validate(&alg, &arch)?;
//! assert!(schedule.makespan() >= TimeNs::from_micros(600));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adequation;
mod algorithm;
pub mod analysis;
mod architecture;
mod cache;
pub mod codegen;
mod error;
mod schedule;
pub mod sdx;
pub mod timeline;
mod timing;

pub use adequation::{adequation, AdequationOptions, MappingPolicy};
pub use algorithm::{AlgorithmGraph, Condition, OpId, OpKind};
pub use architecture::{ArchitectureGraph, MediumId, MediumKind, ProcId};
pub use cache::{schedule_digest, Fnv1a, ScheduleCache};
pub use error::AaaError;
pub use schedule::{Schedule, ScheduledComm, ScheduledOp};
pub use timing::TimingDb;

/// Re-export of the integer-nanosecond time type shared with `ecl-sim`,
/// so schedule instants flow into the simulator without conversion.
pub use ecl_sim::TimeNs;
