//! Worst-case execution time characterization.

use std::collections::HashMap;

use ecl_sim::TimeNs;

use crate::algorithm::OpId;
use crate::architecture::ProcId;
use crate::AaaError;

/// The WCET table: worst-case execution time of each operation on each
/// processor.
///
/// Lookups fall back from the `(op, processor)`-specific entry to the
/// operation's default; an operation with neither on a given processor
/// *cannot execute there* (heterogeneity / placement constraints).
///
/// # Examples
///
/// ```
/// use ecl_aaa::{AlgorithmGraph, ArchitectureGraph, TimeNs, TimingDb};
/// let mut alg = AlgorithmGraph::new();
/// let f = alg.add_function("fft");
/// let mut arch = ArchitectureGraph::new();
/// let arm = arch.add_processor("ecu", "arm");
/// let dsp = arch.add_processor("dsp", "c6x");
/// let mut db = TimingDb::new();
/// db.set_default(f, TimeNs::from_micros(900));
/// db.set(f, dsp, TimeNs::from_micros(100)); // much faster on the DSP
/// assert_eq!(db.wcet(f, arm), Some(TimeNs::from_micros(900)));
/// assert_eq!(db.wcet(f, dsp), Some(TimeNs::from_micros(100)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimingDb {
    specific: HashMap<(OpId, ProcId), TimeNs>,
    default: HashMap<OpId, TimeNs>,
    /// Processors on which an operation is explicitly forbidden.
    forbidden: HashMap<(OpId, ProcId), ()>,
}

impl TimingDb {
    /// Creates an empty table.
    pub fn new() -> Self {
        TimingDb::default()
    }

    /// Sets the default WCET of `op` on every processor.
    ///
    /// # Panics
    ///
    /// Panics if `wcet` is negative (a WCET is a duration).
    pub fn set_default(&mut self, op: OpId, wcet: TimeNs) {
        assert!(!wcet.is_negative(), "WCET must be non-negative");
        self.default.insert(op, wcet);
    }

    /// Sets the WCET of `op` on one specific processor, overriding the
    /// default.
    ///
    /// # Panics
    ///
    /// Panics if `wcet` is negative.
    pub fn set(&mut self, op: OpId, proc: ProcId, wcet: TimeNs) {
        assert!(!wcet.is_negative(), "WCET must be non-negative");
        self.specific.insert((op, proc), wcet);
        self.forbidden.remove(&(op, proc));
    }

    /// Forbids executing `op` on `proc` (placement constraint), regardless
    /// of defaults.
    pub fn forbid(&mut self, op: OpId, proc: ProcId) {
        self.forbidden.insert((op, proc), ());
        self.specific.remove(&(op, proc));
    }

    /// The WCET of `op` on `proc`, or `None` if the operation cannot
    /// execute there.
    pub fn wcet(&self, op: OpId, proc: ProcId) -> Option<TimeNs> {
        if self.forbidden.contains_key(&(op, proc)) {
            return None;
        }
        self.specific
            .get(&(op, proc))
            .or_else(|| self.default.get(&op))
            .copied()
    }

    /// Iterates over the per-`(op, processor)` overrides, in unspecified
    /// order.
    pub fn iter_specific(&self) -> impl Iterator<Item = (OpId, ProcId, TimeNs)> + '_ {
        self.specific.iter().map(|(&(o, p), &t)| (o, p, t))
    }

    /// Iterates over the per-operation defaults, in unspecified order.
    pub fn iter_defaults(&self) -> impl Iterator<Item = (OpId, TimeNs)> + '_ {
        self.default.iter().map(|(&o, &t)| (o, t))
    }

    /// Iterates over the forbidden `(op, processor)` placements, in
    /// unspecified order.
    pub fn iter_forbidden(&self) -> impl Iterator<Item = (OpId, ProcId)> + '_ {
        self.forbidden.keys().copied()
    }

    /// The smallest WCET of `op` over the given processors, or an error if
    /// no processor can execute it.
    ///
    /// # Errors
    ///
    /// Returns [`AaaError::Unimplementable`] when every processor is
    /// excluded.
    pub fn min_wcet(
        &self,
        op: OpId,
        procs: impl IntoIterator<Item = ProcId>,
        op_name: &str,
    ) -> Result<TimeNs, AaaError> {
        procs
            .into_iter()
            .filter_map(|p| self.wcet(op, p))
            .min()
            .ok_or_else(|| AaaError::Unimplementable {
                op: op_name.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::AlgorithmGraph;
    use crate::architecture::ArchitectureGraph;

    fn ids() -> (OpId, ProcId, ProcId) {
        let mut alg = AlgorithmGraph::new();
        let op = alg.add_function("f");
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "a");
        let p1 = arch.add_processor("p1", "b");
        (op, p0, p1)
    }

    #[test]
    fn default_and_specific_lookup() {
        let (op, p0, p1) = ids();
        let mut db = TimingDb::new();
        assert_eq!(db.wcet(op, p0), None);
        db.set_default(op, TimeNs::from_micros(10));
        assert_eq!(db.wcet(op, p0), Some(TimeNs::from_micros(10)));
        db.set(op, p1, TimeNs::from_micros(3));
        assert_eq!(db.wcet(op, p1), Some(TimeNs::from_micros(3)));
        assert_eq!(db.wcet(op, p0), Some(TimeNs::from_micros(10)));
    }

    #[test]
    fn forbid_overrides_default() {
        let (op, p0, p1) = ids();
        let mut db = TimingDb::new();
        db.set_default(op, TimeNs::from_micros(10));
        db.forbid(op, p0);
        assert_eq!(db.wcet(op, p0), None);
        assert!(db.wcet(op, p1).is_some());
        // Setting a specific value lifts the interdiction.
        db.set(op, p0, TimeNs::from_micros(5));
        assert_eq!(db.wcet(op, p0), Some(TimeNs::from_micros(5)));
    }

    #[test]
    fn min_wcet_over_processors() {
        let (op, p0, p1) = ids();
        let mut db = TimingDb::new();
        db.set(op, p1, TimeNs::from_micros(7));
        assert_eq!(
            db.min_wcet(op, [p0, p1], "f").unwrap(),
            TimeNs::from_micros(7)
        );
        let empty = TimingDb::new();
        assert!(matches!(
            empty.min_wcet(op, [p0, p1], "f"),
            Err(AaaError::Unimplementable { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_wcet_panics() {
        let (op, p0, _) = ids();
        let mut db = TimingDb::new();
        db.set(op, p0, TimeNs::from_nanos(-1));
    }
}
