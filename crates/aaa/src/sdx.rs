//! A SynDEx-flavoured textual project format (`.sdx`).
//!
//! SynDEx stores algorithm graphs, architecture graphs and timing
//! characterizations as text files the designer edits and versions. This
//! module provides the same workflow: [`Project`] bundles the three
//! artifacts, [`to_sdx`] renders them to a line-oriented text form, and
//! [`from_sdx`] parses it back. Round-tripping is lossless (up to map
//! ordering).
//!
//! # Format
//!
//! ```text
//! # comment
//! algorithm
//!   sensor   in0
//!   function step
//!   actuator out0
//!   edge in0 -> step : 4
//!   edge step -> out0 : 4
//!   condition branch_a ? mode = 0
//! end
//!
//! architecture
//!   processor ecu0 : arm
//!   processor ecu1 : arm
//!   bus  can  : ecu0 ecu1 : latency 120us rate 8us
//!   link srio : ecu0 ecu1 : latency 5us   rate 1us
//! end
//!
//! timing
//!   default step = 300us
//!   wcet step @ ecu1 = 150us
//!   forbid in0 @ ecu1
//! end
//! ```
//!
//! Durations accept `ns`, `us`, `ms` and `s` suffixes (a bare integer is
//! nanoseconds). Operation and processor names must be unique within a
//! project file.

use std::collections::HashMap;
use std::fmt::Write as _;

use ecl_sim::TimeNs;

use crate::algorithm::{AlgorithmGraph, OpId, OpKind};
use crate::architecture::{ArchitectureGraph, MediumKind, ProcId};
use crate::timing::TimingDb;
use crate::AaaError;

/// A complete AAA project: the three artifacts the adequation consumes.
#[derive(Debug, Clone, Default)]
pub struct Project {
    /// The algorithm graph.
    pub algorithm: AlgorithmGraph,
    /// The architecture graph.
    pub architecture: ArchitectureGraph,
    /// The WCET characterization.
    pub timing: TimingDb,
}

fn fmt_duration(t: TimeNs) -> String {
    let ns = t.as_nanos();
    if ns == 0 {
        return "0".into();
    }
    if ns % 1_000_000_000 == 0 {
        format!("{}s", ns / 1_000_000_000)
    } else if ns % 1_000_000 == 0 {
        format!("{}ms", ns / 1_000_000)
    } else if ns % 1_000 == 0 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

fn parse_duration(s: &str, line: usize) -> Result<TimeNs, AaaError> {
    let err = |reason: String| AaaError::ParseSdx { line, reason };
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1i64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    let v: i64 = digits
        .trim()
        .parse()
        .map_err(|_| err(format!("invalid duration '{s}'")))?;
    Ok(TimeNs::from_nanos(v * mult))
}

/// Renders a project to the `.sdx` text form.
pub fn to_sdx(project: &Project) -> String {
    let alg = &project.algorithm;
    let arch = &project.architecture;
    let mut s = String::new();
    s.push_str("# eclipse-codesign project\nalgorithm\n");
    for op in alg.ops() {
        let kw = match alg.kind(op) {
            OpKind::Sensor => "sensor",
            OpKind::Function => "function",
            OpKind::Actuator => "actuator",
        };
        let _ = writeln!(s, "  {kw} {}", alg.name(op));
    }
    for e in alg.edges() {
        let _ = writeln!(
            s,
            "  edge {} -> {} : {}",
            alg.name(e.src),
            alg.name(e.dst),
            e.data_units
        );
    }
    for op in alg.ops() {
        if let Some(c) = alg.condition(op) {
            let _ = writeln!(
                s,
                "  condition {} ? {} = {}",
                alg.name(op),
                alg.name(c.variable),
                c.branch
            );
        }
    }
    s.push_str("end\n\narchitecture\n");
    for p in arch.processors() {
        let _ = writeln!(
            s,
            "  processor {} : {}",
            arch.proc_name(p),
            arch.proc_kind(p)
        );
    }
    for m in arch.media() {
        let kw = match arch.medium_kind(m) {
            MediumKind::Bus => "bus",
            MediumKind::PointToPoint => "link",
        };
        let procs: Vec<&str> = arch
            .medium_procs(m)
            .iter()
            .map(|&p| arch.proc_name(p))
            .collect();
        let _ = writeln!(
            s,
            "  {kw} {} : {} : latency {} rate {}",
            arch.medium_name(m),
            procs.join(" "),
            fmt_duration(arch.transfer_time(m, 0)),
            fmt_duration(arch.transfer_time(m, 1) - arch.transfer_time(m, 0)),
        );
    }
    s.push_str("end\n\ntiming\n");
    let mut defaults: Vec<_> = project.timing.iter_defaults().collect();
    defaults.sort_by_key(|&(o, _)| o);
    for (op, t) in defaults {
        let _ = writeln!(s, "  default {} = {}", alg.name(op), fmt_duration(t));
    }
    let mut specific: Vec<_> = project.timing.iter_specific().collect();
    specific.sort_by_key(|&(o, p, _)| (o, p));
    for (op, proc, t) in specific {
        let _ = writeln!(
            s,
            "  wcet {} @ {} = {}",
            alg.name(op),
            arch.proc_name(proc),
            fmt_duration(t)
        );
    }
    let mut forbidden: Vec<_> = project.timing.iter_forbidden().collect();
    forbidden.sort();
    for (op, proc) in forbidden {
        let _ = writeln!(s, "  forbid {} @ {}", alg.name(op), arch.proc_name(proc));
    }
    s.push_str("end\n");
    s
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Algorithm,
    Architecture,
    Timing,
}

/// Parses a project from the `.sdx` text form.
///
/// # Errors
///
/// Returns [`AaaError::ParseSdx`] with the offending line number for any
/// syntax or reference error (unknown name, duplicate name, bad duration).
pub fn from_sdx(text: &str) -> Result<Project, AaaError> {
    let mut project = Project::default();
    let mut ops: HashMap<String, OpId> = HashMap::new();
    let mut procs: HashMap<String, ProcId> = HashMap::new();
    let mut section = Section::None;

    let err = |line: usize, reason: String| AaaError::ParseSdx { line, reason };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match (section, tokens[0]) {
            (Section::None, "algorithm") => section = Section::Algorithm,
            (Section::None, "architecture") => section = Section::Architecture,
            (Section::None, "timing") => section = Section::Timing,
            (Section::None, other) => {
                return Err(err(
                    line_no,
                    format!("expected a section header, got '{other}'"),
                ))
            }
            (_, "end") => section = Section::None,

            (Section::Algorithm, kw @ ("sensor" | "function" | "actuator")) => {
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, format!("'{kw}' needs a name")))?;
                if ops.contains_key(name) {
                    return Err(err(line_no, format!("duplicate operation '{name}'")));
                }
                let id = match kw {
                    "sensor" => project.algorithm.add_sensor(name),
                    "actuator" => project.algorithm.add_actuator(name),
                    _ => project.algorithm.add_function(name),
                };
                ops.insert(name.to_string(), id);
            }
            (Section::Algorithm, "edge") => {
                // edge SRC -> DST : UNITS
                if tokens.len() != 6 || tokens[2] != "->" || tokens[4] != ":" {
                    return Err(err(line_no, "expected 'edge SRC -> DST : UNITS'".into()));
                }
                let src = *ops
                    .get(tokens[1])
                    .ok_or_else(|| err(line_no, format!("unknown operation '{}'", tokens[1])))?;
                let dst = *ops
                    .get(tokens[3])
                    .ok_or_else(|| err(line_no, format!("unknown operation '{}'", tokens[3])))?;
                let units: u32 = tokens[5]
                    .parse()
                    .map_err(|_| err(line_no, format!("invalid data units '{}'", tokens[5])))?;
                project.algorithm.add_edge(src, dst, units)?;
            }
            (Section::Algorithm, "condition") => {
                // condition OP ? VAR = BRANCH
                if tokens.len() != 6 || tokens[2] != "?" || tokens[4] != "=" {
                    return Err(err(
                        line_no,
                        "expected 'condition OP ? VAR = BRANCH'".into(),
                    ));
                }
                let op = *ops
                    .get(tokens[1])
                    .ok_or_else(|| err(line_no, format!("unknown operation '{}'", tokens[1])))?;
                let var = *ops
                    .get(tokens[3])
                    .ok_or_else(|| err(line_no, format!("unknown operation '{}'", tokens[3])))?;
                let branch: usize = tokens[5]
                    .parse()
                    .map_err(|_| err(line_no, format!("invalid branch '{}'", tokens[5])))?;
                project.algorithm.set_condition(op, var, branch)?;
            }
            (Section::Algorithm, other) => {
                return Err(err(line_no, format!("unknown algorithm item '{other}'")))
            }

            (Section::Architecture, "processor") => {
                // processor NAME : KIND
                if tokens.len() != 4 || tokens[2] != ":" {
                    return Err(err(line_no, "expected 'processor NAME : KIND'".into()));
                }
                if procs.contains_key(tokens[1]) {
                    return Err(err(line_no, format!("duplicate processor '{}'", tokens[1])));
                }
                let id = project.architecture.add_processor(tokens[1], tokens[3]);
                procs.insert(tokens[1].to_string(), id);
            }
            (Section::Architecture, kw @ ("bus" | "link")) => {
                // bus NAME : P0 P1 ... : latency D rate D
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, format!("'{kw}' needs a name")))?;
                let rest = tokens[2..].join(" ");
                let parts: Vec<&str> = rest.split(':').map(str::trim).collect();
                if parts.len() != 3 || !parts[0].is_empty() {
                    return Err(err(
                        line_no,
                        format!("expected '{kw} NAME : PROCS : latency D rate D'"),
                    ));
                }
                let members: Result<Vec<ProcId>, AaaError> = parts[1]
                    .split_whitespace()
                    .map(|n| {
                        procs
                            .get(n)
                            .copied()
                            .ok_or_else(|| err(line_no, format!("unknown processor '{n}'")))
                    })
                    .collect();
                let members = members?;
                let tail: Vec<&str> = parts[2].split_whitespace().collect();
                if tail.len() != 4 || tail[0] != "latency" || tail[2] != "rate" {
                    return Err(err(line_no, "expected 'latency D rate D'".into()));
                }
                let latency = parse_duration(tail[1], line_no)?;
                let rate = parse_duration(tail[3], line_no)?;
                if kw == "bus" {
                    project
                        .architecture
                        .add_bus(name, &members, latency, rate)?;
                } else {
                    if members.len() != 2 {
                        return Err(err(
                            line_no,
                            "a link connects exactly two processors".into(),
                        ));
                    }
                    project
                        .architecture
                        .add_link(name, members[0], members[1], latency, rate)?;
                }
            }
            (Section::Architecture, other) => {
                return Err(err(line_no, format!("unknown architecture item '{other}'")))
            }

            (Section::Timing, "default") => {
                // default OP = D
                if tokens.len() != 4 || tokens[2] != "=" {
                    return Err(err(line_no, "expected 'default OP = DURATION'".into()));
                }
                let op = *ops
                    .get(tokens[1])
                    .ok_or_else(|| err(line_no, format!("unknown operation '{}'", tokens[1])))?;
                project
                    .timing
                    .set_default(op, parse_duration(tokens[3], line_no)?);
            }
            (Section::Timing, "wcet") => {
                // wcet OP @ PROC = D
                if tokens.len() != 6 || tokens[2] != "@" || tokens[4] != "=" {
                    return Err(err(line_no, "expected 'wcet OP @ PROC = DURATION'".into()));
                }
                let op = *ops
                    .get(tokens[1])
                    .ok_or_else(|| err(line_no, format!("unknown operation '{}'", tokens[1])))?;
                let proc = *procs
                    .get(tokens[3])
                    .ok_or_else(|| err(line_no, format!("unknown processor '{}'", tokens[3])))?;
                project
                    .timing
                    .set(op, proc, parse_duration(tokens[5], line_no)?);
            }
            (Section::Timing, "forbid") => {
                // forbid OP @ PROC
                if tokens.len() != 4 || tokens[2] != "@" {
                    return Err(err(line_no, "expected 'forbid OP @ PROC'".into()));
                }
                let op = *ops
                    .get(tokens[1])
                    .ok_or_else(|| err(line_no, format!("unknown operation '{}'", tokens[1])))?;
                let proc = *procs
                    .get(tokens[3])
                    .ok_or_else(|| err(line_no, format!("unknown processor '{}'", tokens[3])))?;
                project.timing.forbid(op, proc);
            }
            (Section::Timing, other) => {
                return Err(err(line_no, format!("unknown timing item '{other}'")))
            }
        }
    }
    if section != Section::None {
        return Err(AaaError::ParseSdx {
            line: text.lines().count(),
            reason: "unterminated section (missing 'end')".into(),
        });
    }
    Ok(project)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adequation::{adequation, AdequationOptions};

    const SAMPLE: &str = r"
# a distributed control law
algorithm
  sensor   in0
  sensor   in1
  function step
  actuator out0
  edge in0 -> step : 4
  edge in1 -> step : 4
  edge step -> out0 : 4
end

architecture
  processor ecu0 : arm
  processor ecu1 : dsp
  bus can : ecu0 ecu1 : latency 120us rate 8us
  link srio : ecu0 ecu1 : latency 5us rate 1us
end

timing
  default in0 = 80us
  default in1 = 80us
  default out0 = 80us
  default step = 600us
  wcet step @ ecu1 = 200us
  forbid in0 @ ecu1
end
";

    #[test]
    fn parse_sample_and_schedule() {
        let p = from_sdx(SAMPLE).unwrap();
        assert_eq!(p.algorithm.len(), 4);
        assert_eq!(p.architecture.num_processors(), 2);
        assert_eq!(p.architecture.num_media(), 2);
        let schedule = adequation(
            &p.algorithm,
            &p.architecture,
            &p.timing,
            AdequationOptions::default(),
        )
        .unwrap();
        schedule.validate(&p.algorithm, &p.architecture).unwrap();
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = from_sdx(SAMPLE).unwrap();
        let text = to_sdx(&p);
        let q = from_sdx(&text).unwrap();
        assert_eq!(p.algorithm.len(), q.algorithm.len());
        assert_eq!(p.algorithm.edges(), q.algorithm.edges());
        assert_eq!(p.architecture.num_media(), q.architecture.num_media());
        for op in p.algorithm.ops() {
            assert_eq!(p.algorithm.name(op), q.algorithm.name(op));
            assert_eq!(p.algorithm.kind(op), q.algorithm.kind(op));
        }
        // Timing survives: same wcet everywhere.
        for op in p.algorithm.ops() {
            for proc in p.architecture.processors() {
                assert_eq!(
                    p.timing.wcet(op, proc),
                    q.timing.wcet(op, proc),
                    "op {op} proc {proc}"
                );
            }
        }
    }

    #[test]
    fn conditions_roundtrip() {
        let mut alg = AlgorithmGraph::new();
        let mode = alg.add_function("mode");
        let f = alg.add_function("branchy");
        alg.set_condition(f, mode, 3).unwrap();
        let project = Project {
            algorithm: alg,
            ..Project::default()
        };
        let text = to_sdx(&project);
        assert!(text.contains("condition branchy ? mode = 3"));
        let q = from_sdx(&text).unwrap();
        let f2 = q.algorithm.ops().nth(1).unwrap();
        assert_eq!(q.algorithm.condition(f2).unwrap().branch, 3);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(parse_duration("5ns", 1).unwrap(), TimeNs::from_nanos(5));
        assert_eq!(parse_duration("5us", 1).unwrap(), TimeNs::from_micros(5));
        assert_eq!(parse_duration("5ms", 1).unwrap(), TimeNs::from_millis(5));
        assert_eq!(parse_duration("5s", 1).unwrap(), TimeNs::from_secs(5));
        assert_eq!(parse_duration("5", 1).unwrap(), TimeNs::from_nanos(5));
        assert!(parse_duration("abc", 1).is_err());
        assert_eq!(fmt_duration(TimeNs::from_millis(3)), "3ms");
        assert_eq!(fmt_duration(TimeNs::from_nanos(1500)), "1500ns");
        assert_eq!(fmt_duration(TimeNs::ZERO), "0");
        assert_eq!(fmt_duration(TimeNs::from_secs(2)), "2s");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "algorithm\n  sensor a\n  edge a -> ghost : 1\nend\n";
        match from_sdx(bad) {
            Err(AaaError::ParseSdx { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("ghost"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_sdx("nonsense\n").is_err());
        assert!(from_sdx("algorithm\n  widget w\nend\n").is_err());
        assert!(from_sdx("algorithm\n  sensor a\n").is_err()); // missing end
        assert!(from_sdx("algorithm\n  sensor a\n  sensor a\nend\n").is_err());
        assert!(from_sdx("architecture\n  bus b : p0 : latency 1 rate 1\nend\n").is_err());
        assert!(from_sdx("timing\n  default ghost = 1us\nend\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nalgorithm # trailing\n  sensor a # named a\nend\n";
        let p = from_sdx(text).unwrap();
        assert_eq!(p.algorithm.len(), 1);
    }
}
