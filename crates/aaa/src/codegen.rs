//! Distributed executive generation from a static schedule.
//!
//! SynDEx generates, for each processor, a *computation sequence*
//! interleaved with receive/send synchronization, and for each medium a
//! *communication sequence* — the total orders chosen by the adequation.
//! The synchronization preserves those orders, and the generated
//! executives are deadlock-free by construction. This module reproduces
//! that artifact:
//!
//! * [`generate`] extracts per-processor [`Executive`]s and per-medium
//!   [`MediumSequence`]s from a [`Schedule`] (emitting a `Recv` on *every*
//!   processor that consumes data delivered by a broadcast transfer);
//! * [`render`] prints an executive in a SynDEx-macro-like textual form;
//! * [`check_deadlock_free`] verifies the synchronization graph has no
//!   cyclic wait (posting-send / blocking-receive semantics) and, when it
//!   does, names the blocked receives and the wait cycle;
//! * [`replay`] executes the executives and communication sequences
//!   against the architecture's timing and returns every operation's
//!   completion instant — an independent re-derivation of the schedule
//!   that must (and does, see the tests) match it exactly.

use std::collections::{HashMap, HashSet};
use std::fmt;

use ecl_sim::TimeNs;
use serde::{Deserialize, Serialize};

use crate::algorithm::AlgorithmGraph;
use crate::architecture::{ArchitectureGraph, MediumId, ProcId};
use crate::schedule::Schedule;
use crate::{AaaError, OpId};

/// One executive instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Execute operation `op` (worst case `wcet`).
    Compute {
        /// The operation to run.
        op: OpId,
        /// Its budgeted worst-case duration.
        wcet: TimeNs,
    },
    /// Post the data of `src_op` for transfer over `medium` (non-blocking:
    /// the communication sequence performs the move).
    Send {
        /// Producer whose output is sent.
        src_op: OpId,
        /// The medium carrying the transfer.
        medium: MediumId,
        /// Receiving processor of the scheduled transfer.
        to: ProcId,
    },
    /// Wait until the data of `src_op` sent by `from` over `medium` has
    /// arrived (blocking).
    Recv {
        /// Producer whose output is received.
        src_op: OpId,
        /// The medium carrying the transfer.
        medium: MediumId,
        /// Sending processor.
        from: ProcId,
    },
}

/// The synchronized instruction sequence of one processor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Executive {
    /// The processor this executive runs on.
    pub proc: ProcId,
    /// Instructions in execution order (one period of the infinite loop).
    pub instrs: Vec<Instr>,
}

/// One transfer of a medium's communication sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferSlot {
    /// Producer whose output moves.
    pub src_op: OpId,
    /// Sending processor.
    pub from: ProcId,
    /// Scheduled receiving processor (broadcast media deliver to every
    /// connected processor regardless).
    pub to: ProcId,
    /// Data volume in medium units.
    pub data_units: u32,
}

/// The ordered communication sequence of one medium.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediumSequence {
    /// The medium this sequence drives.
    pub medium: MediumId,
    /// Transfers in the order fixed by the adequation.
    pub transfers: Vec<TransferSlot>,
}

/// Everything [`generate`] produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generated {
    /// One executive per processor (in processor order).
    pub executives: Vec<Executive>,
    /// One communication sequence per medium (in medium order).
    pub comm_sequences: Vec<MediumSequence>,
}

/// Extracts the executives and communication sequences from a schedule.
///
/// Computations are ordered by start instant. A `Send` is placed at the
/// transfer's scheduled start on the sending side; a `Recv` is placed at
/// the transfer's completion on the scheduled receiver **and** on every
/// other processor that consumes the broadcast data without a dedicated
/// transfer of its own.
///
/// # Errors
///
/// Returns [`AaaError::InvalidSchedule`] if the schedule references
/// processors unknown to `arch`.
pub fn generate(
    schedule: &Schedule,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
) -> Result<Generated, AaaError> {
    for s in schedule.ops() {
        arch.check_proc(s.proc)
            .map_err(|_| AaaError::InvalidSchedule {
                reason: format!("schedule references unknown processor {}", s.proc),
            })?;
    }
    // Which processors need a Recv for each scheduled transfer: the
    // scheduled receiver plus any broadcast beneficiary hosting a consumer
    // of the data that has no dedicated transfer.
    let mut recv_targets: Vec<Vec<ProcId>> = Vec::with_capacity(schedule.comms().len());
    for (i, c) in schedule.comms().iter().enumerate() {
        let mut targets = vec![c.to];
        for q in arch.medium_procs(c.medium) {
            if *q == c.from || *q == c.to {
                continue;
            }
            // q consumes src_op's data?
            let consumes = alg
                .edges()
                .iter()
                .any(|e| e.src == c.src_op && schedule.slot(e.dst).map(|s| s.proc) == Some(*q));
            if !consumes {
                continue;
            }
            // ... and has no dedicated transfer of its own for this data.
            let dedicated = schedule
                .comms()
                .iter()
                .enumerate()
                .any(|(j, o)| j != i && o.src_op == c.src_op && o.to == *q);
            // Only the earliest qualifying broadcast carries the Recv.
            let earliest = schedule
                .comms()
                .iter()
                .enumerate()
                .filter(|(_, o)| o.src_op == c.src_op && arch.medium_procs(o.medium).contains(q))
                .min_by_key(|(_, o)| o.end)
                .map(|(j, _)| j);
            if !dedicated && earliest == Some(i) {
                targets.push(*q);
            }
        }
        recv_targets.push(targets);
    }

    let mut executives = Vec::new();
    for p in arch.processors() {
        // (sort instant, tie rank, instruction): recv < send < compute at
        // equal instants — arriving data is consumed before a computation
        // starts, and produced data is posted (non-blocking) before the
        // next computation begins. A send is anchored at the *producer's
        // completion* (when the data exists), not at the transfer's start:
        // the medium's communication sequence handles the arbitration
        // delay, and posting early is what lets the transfer overlap the
        // processor's subsequent computations (as the schedule assumes).
        let mut items: Vec<(TimeNs, u8, Instr)> = Vec::new();
        for s in schedule.proc_sequence(p) {
            items.push((
                s.start,
                2,
                Instr::Compute {
                    op: s.op,
                    wcet: s.end - s.start,
                },
            ));
        }
        for (i, c) in schedule.comms().iter().enumerate() {
            if c.from == p {
                let data_ready = schedule.slot(c.src_op).map(|s| s.end).unwrap_or(c.start);
                items.push((
                    data_ready,
                    1,
                    Instr::Send {
                        src_op: c.src_op,
                        medium: c.medium,
                        to: c.to,
                    },
                ));
            }
            if recv_targets[i].contains(&p) {
                items.push((
                    c.end,
                    0,
                    Instr::Recv {
                        src_op: c.src_op,
                        medium: c.medium,
                        from: c.from,
                    },
                ));
            }
        }
        items.sort_by_key(|&(t, rank, _)| (t, rank));
        executives.push(Executive {
            proc: p,
            instrs: items.into_iter().map(|(_, _, i)| i).collect(),
        });
    }

    let comm_sequences = arch
        .media()
        .map(|m| MediumSequence {
            medium: m,
            transfers: schedule
                .medium_sequence(m)
                .into_iter()
                .map(|c| TransferSlot {
                    src_op: c.src_op,
                    from: c.from,
                    to: c.to,
                    data_units: c.data_units,
                })
                .collect(),
        })
        .collect();

    Ok(Generated {
        executives,
        comm_sequences,
    })
}

/// Renders one executive in a SynDEx-macro-like textual form.
pub fn render(exec: &Executive, alg: &AlgorithmGraph, arch: &ArchitectureGraph) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "; synchronized executive for processor {} ({})\n",
        arch.proc_name(exec.proc),
        arch.proc_kind(exec.proc)
    ));
    s.push_str(&format!("main_{}:\n  loop:\n", arch.proc_name(exec.proc)));
    for i in &exec.instrs {
        match *i {
            Instr::Compute { op, wcet } => {
                s.push_str(&format!("    compute {} ; wcet {}\n", alg.name(op), wcet));
            }
            Instr::Send { src_op, medium, to } => {
                s.push_str(&format!(
                    "    send    {} on {} -> {}\n",
                    alg.name(src_op),
                    arch.medium_name(medium),
                    arch.proc_name(to)
                ));
            }
            Instr::Recv {
                src_op,
                medium,
                from,
            } => {
                s.push_str(&format!(
                    "    recv    {} on {} <- {}\n",
                    alg.name(src_op),
                    arch.medium_name(medium),
                    arch.proc_name(from)
                ));
            }
        }
    }
    s.push_str("  endloop\n");
    s
}

/// Renders a medium's communication sequence.
pub fn render_comm_sequence(
    seq: &MediumSequence,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
) -> String {
    let mut s = format!(
        "; communication sequence for medium {}\ncomm_{}:\n  loop:\n",
        arch.medium_name(seq.medium),
        arch.medium_name(seq.medium)
    );
    for t in &seq.transfers {
        s.push_str(&format!(
            "    transfer {} : {} -> {} ({} units)\n",
            alg.name(t.src_op),
            arch.proc_name(t.from),
            arch.proc_name(t.to),
            t.data_units
        ));
    }
    s.push_str("  endloop\n");
    s
}

/// A blocking receive at which a processor's sequence is stuck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedRecv {
    /// The stuck processor.
    pub proc: ProcId,
    /// Index of the blocked `Recv` in the processor's executive.
    pub instr: usize,
    /// Producer whose data the receive waits for.
    pub src_op: OpId,
    /// Processor the data was expected from.
    pub from: ProcId,
    /// Medium of the expected transfer.
    pub medium: MediumId,
}

impl fmt::Display for BlockedRecv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} waits for {} from {} on {}",
            self.proc, self.src_op, self.from, self.medium
        )
    }
}

/// Outcome of [`check_deadlock_free`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockCheck {
    /// Every processor's sequence runs to completion.
    Free,
    /// At least one processor is stuck forever at a blocking receive.
    Deadlocked {
        /// The cyclic wait (each entry waits on the next, the last on the
        /// first), when one exists among the blocked processors. Empty for
        /// acyclic stalls such as an orphan receive whose matching send
        /// appears in no executive.
        cycle: Vec<BlockedRecv>,
        /// Every blocked receive, in processor order.
        blocked: Vec<BlockedRecv>,
    },
}

impl DeadlockCheck {
    /// `true` iff the executives are deadlock-free.
    pub fn is_free(&self) -> bool {
        matches!(self, DeadlockCheck::Free)
    }
}

impl fmt::Display for DeadlockCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlockCheck::Free => write!(f, "deadlock-free"),
            DeadlockCheck::Deadlocked { cycle, blocked } => {
                let list = |rs: &[BlockedRecv]| {
                    rs.iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                };
                if cycle.is_empty() {
                    write!(f, "deadlocked (no send matches): {}", list(blocked))
                } else {
                    write!(f, "deadlocked on cycle: {}", list(cycle))
                }
            }
        }
    }
}

/// Verifies the executives cannot deadlock under posting-send /
/// blocking-receive semantics: `Send` never blocks, `Recv` waits for the
/// matching `Send` to have been posted. Returns [`DeadlockCheck::Free`]
/// iff every processor's sequence runs to completion; otherwise names
/// every blocked receive and extracts the cyclic wait, so a hang is
/// diagnosable before the virtual executive ever launches.
pub fn check_deadlock_free(execs: &[Executive]) -> DeadlockCheck {
    let mut pc = vec![0usize; execs.len()];
    let mut posted: HashSet<(OpId, ProcId, MediumId)> = HashSet::new();
    loop {
        let mut progressed = false;
        for (i, e) in execs.iter().enumerate() {
            while pc[i] < e.instrs.len() {
                match e.instrs[pc[i]] {
                    Instr::Compute { .. } => {
                        pc[i] += 1;
                        progressed = true;
                    }
                    Instr::Send { src_op, medium, .. } => {
                        posted.insert((src_op, e.proc, medium));
                        pc[i] += 1;
                        progressed = true;
                    }
                    Instr::Recv {
                        src_op,
                        medium,
                        from,
                    } => {
                        if posted.contains(&(src_op, from, medium)) {
                            pc[i] += 1;
                            progressed = true;
                        } else {
                            break; // blocked, try another processor
                        }
                    }
                }
            }
        }
        if pc.iter().zip(execs).all(|(&c, e)| c >= e.instrs.len()) {
            return DeadlockCheck::Free;
        }
        if !progressed {
            let blocked: Vec<BlockedRecv> = execs
                .iter()
                .enumerate()
                .filter(|(i, e)| pc[*i] < e.instrs.len())
                .filter_map(|(i, e)| match e.instrs[pc[i]] {
                    Instr::Recv {
                        src_op,
                        medium,
                        from,
                    } => Some(BlockedRecv {
                        proc: e.proc,
                        instr: pc[i],
                        src_op,
                        from,
                        medium,
                    }),
                    _ => None,
                })
                .collect();
            let cycle = wait_cycle(&blocked, execs, &pc);
            return DeadlockCheck::Deadlocked { cycle, blocked };
        }
    }
}

/// Extracts a cyclic wait among the blocked receives: an edge runs from a
/// blocked processor to the blocked processor it waits on, provided the
/// waited-on executive still holds the matching (unreached) `Send`. A
/// receive whose matching send appears nowhere ahead is an orphan, not
/// part of a cycle.
fn wait_cycle(blocked: &[BlockedRecv], execs: &[Executive], pc: &[usize]) -> Vec<BlockedRecv> {
    let index_of: HashMap<ProcId, usize> = blocked
        .iter()
        .enumerate()
        .map(|(i, b)| (b.proc, i))
        .collect();
    let successor = |b: &BlockedRecv| -> Option<usize> {
        let &j = index_of.get(&b.from)?;
        let (ei, e) = execs.iter().enumerate().find(|(_, e)| e.proc == b.from)?;
        let pending_send = e.instrs[pc[ei]..].iter().any(|i| {
            matches!(i, Instr::Send { src_op, medium, .. }
                if *src_op == b.src_op && *medium == b.medium)
        });
        pending_send.then_some(j)
    };
    for start in 0..blocked.len() {
        let mut path = vec![start];
        let mut cur = start;
        while let Some(next) = successor(&blocked[cur]) {
            if let Some(pos) = path.iter().position(|&p| p == next) {
                return path[pos..].iter().map(|&p| blocked[p]).collect();
            }
            path.push(next);
            cur = next;
        }
    }
    Vec::new()
}

/// The timeline produced by [`replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayResult {
    /// Completion instant of every computation, in execution order.
    pub op_end: Vec<(OpId, ProcId, TimeNs)>,
    /// Completion instant of every transfer, in execution order.
    pub comm_end: Vec<(OpId, MediumId, TimeNs)>,
    /// Completion of the last activity.
    pub makespan: TimeNs,
}

/// Executes the executives and communication sequences against the
/// architecture's timing: computations take their WCET, transfers take
/// the medium's latency-plus-rate time and respect the communication
/// sequence's total order, `Recv` blocks until the data has crossed.
///
/// This is an independent re-derivation of the schedule from the
/// *generated code*; for executives produced by [`generate`] from a valid
/// schedule it reproduces the schedule's completion instants exactly.
///
/// # Errors
///
/// Returns [`AaaError::InvalidSchedule`] if the executives deadlock (a
/// `Recv` waits for data never sent) — impossible for generated code, but
/// the replay guards hand-written executives too.
pub fn replay(generated: &Generated, arch: &ArchitectureGraph) -> Result<ReplayResult, AaaError> {
    let execs = &generated.executives;
    let mut pc = vec![0usize; execs.len()];
    let mut time = vec![TimeNs::ZERO; execs.len()];
    // Data posted by a Send: (src_op, from, medium) -> posting instant.
    let mut posted: HashMap<(OpId, ProcId, MediumId), TimeNs> = HashMap::new();
    // Completed transfers: (src_op, from, medium) -> arrival instant.
    let mut arrived: HashMap<(OpId, ProcId, MediumId), TimeNs> = HashMap::new();
    let mut seq_next = vec![0usize; generated.comm_sequences.len()];
    let mut medium_free = vec![TimeNs::ZERO; generated.comm_sequences.len()];
    let mut op_end = Vec::new();
    let mut comm_end = Vec::new();

    loop {
        let mut progressed = false;
        // Advance processors.
        for (i, e) in execs.iter().enumerate() {
            while pc[i] < e.instrs.len() {
                match e.instrs[pc[i]] {
                    Instr::Compute { op, wcet } => {
                        time[i] += wcet;
                        op_end.push((op, e.proc, time[i]));
                        pc[i] += 1;
                        progressed = true;
                    }
                    Instr::Send { src_op, medium, .. } => {
                        posted.entry((src_op, e.proc, medium)).or_insert(time[i]);
                        pc[i] += 1;
                        progressed = true;
                    }
                    Instr::Recv {
                        src_op,
                        medium,
                        from,
                    } => {
                        if let Some(&t) = arrived.get(&(src_op, from, medium)) {
                            time[i] = time[i].max(t);
                            pc[i] += 1;
                            progressed = true;
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Advance communication sequences.
        for (si, seq) in generated.comm_sequences.iter().enumerate() {
            while seq_next[si] < seq.transfers.len() {
                let t = seq.transfers[seq_next[si]];
                let Some(&ready) = posted.get(&(t.src_op, t.from, seq.medium)) else {
                    break; // data not yet produced
                };
                let start = medium_free[si].max(ready);
                let end = start + arch.transfer_time(seq.medium, t.data_units);
                medium_free[si] = end;
                arrived.entry((t.src_op, t.from, seq.medium)).or_insert(end);
                comm_end.push((t.src_op, seq.medium, end));
                seq_next[si] += 1;
                progressed = true;
            }
        }
        let procs_done = pc.iter().zip(execs).all(|(&c, e)| c >= e.instrs.len());
        let comms_done = seq_next
            .iter()
            .zip(&generated.comm_sequences)
            .all(|(&n, s)| n >= s.transfers.len());
        if procs_done && comms_done {
            break;
        }
        if !progressed {
            return Err(AaaError::InvalidSchedule {
                reason: "executive replay deadlocked (receive without a matching send)".into(),
            });
        }
    }
    let makespan = op_end
        .iter()
        .map(|&(_, _, t)| t)
        .chain(comm_end.iter().map(|&(_, _, t)| t))
        .max()
        .unwrap_or(TimeNs::ZERO);
    Ok(ReplayResult {
        op_end,
        comm_end,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adequation::{adequation, AdequationOptions};
    use crate::algorithm::AlgorithmGraph;
    use crate::architecture::ArchitectureGraph;
    use crate::timing::TimingDb;

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    fn distributed_case() -> (AlgorithmGraph, ArchitectureGraph, Schedule) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("sample");
        let f = alg.add_function("control");
        let a = alg.add_actuator("actuate");
        alg.add_edge(s, f, 2).unwrap();
        alg.add_edge(f, a, 2).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus("can", &[p0, p1], us(10), us(5)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(50));
        db.set(f, p1, us(100));
        db.set(a, p0, us(50));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        schedule.validate(&alg, &arch).unwrap();
        (alg, arch, schedule)
    }

    #[test]
    fn generated_executives_match_schedule_shape() {
        let (alg, arch, schedule) = distributed_case();
        let g = generate(&schedule, &alg, &arch).unwrap();
        assert_eq!(g.executives.len(), 2);
        let e0 = &g.executives[0];
        let count = |f: fn(&Instr) -> bool| e0.instrs.iter().filter(|i| f(i)).count();
        assert_eq!(count(|i| matches!(i, Instr::Compute { .. })), 2, "{e0:?}");
        assert_eq!(count(|i| matches!(i, Instr::Send { .. })), 1);
        assert_eq!(count(|i| matches!(i, Instr::Recv { .. })), 1);
        // One medium sequence with two transfers.
        assert_eq!(g.comm_sequences.len(), 1);
        assert_eq!(g.comm_sequences[0].transfers.len(), 2);
    }

    #[test]
    fn executives_are_deadlock_free() {
        let (alg, arch, schedule) = distributed_case();
        let g = generate(&schedule, &alg, &arch).unwrap();
        assert_eq!(check_deadlock_free(&g.executives), DeadlockCheck::Free);
    }

    #[test]
    fn recv_precedes_dependent_compute() {
        let (alg, arch, schedule) = distributed_case();
        let g = generate(&schedule, &alg, &arch).unwrap();
        let e1 = &g.executives[1];
        let recv_pos = e1
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Recv { .. }))
            .unwrap();
        let comp_pos = e1
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Compute { .. }))
            .unwrap();
        assert!(recv_pos < comp_pos, "{e1:?}");
    }

    #[test]
    fn render_contains_all_mnemonics() {
        let (alg, arch, schedule) = distributed_case();
        let g = generate(&schedule, &alg, &arch).unwrap();
        let text: String = g
            .executives
            .iter()
            .map(|e| render(e, &alg, &arch))
            .collect();
        assert!(text.contains("compute control"));
        assert!(text.contains("send"));
        assert!(text.contains("recv"));
        assert!(text.contains("main_ecu0"));
        assert!(text.contains("endloop"));
        let comm_text = render_comm_sequence(&g.comm_sequences[0], &alg, &arch);
        assert!(comm_text.contains("transfer sample : ecu0 -> ecu1 (2 units)"));
    }

    #[test]
    fn replay_reproduces_schedule_exactly() {
        let (alg, arch, schedule) = distributed_case();
        let g = generate(&schedule, &alg, &arch).unwrap();
        let rep = replay(&g, &arch).unwrap();
        assert_eq!(rep.makespan, schedule.makespan());
        for (op, proc, end) in &rep.op_end {
            let slot = schedule.slot(*op).unwrap();
            assert_eq!(slot.proc, *proc);
            assert_eq!(slot.end, *end, "op {op}");
        }
        for (src, medium, end) in &rep.comm_end {
            let scheduled = schedule
                .comms()
                .iter()
                .find(|c| c.src_op == *src && c.medium == *medium)
                .unwrap();
            assert_eq!(scheduled.end, *end);
        }
    }

    #[test]
    fn broadcast_consumers_get_receives() {
        // Producer on p0; consumers on p1 and p2 sharing the bus: one
        // transfer, but both remote executives must carry a Recv.
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f1 = alg.add_function("f1");
        let f2 = alg.add_function("f2");
        alg.add_edge(s, f1, 4).unwrap();
        alg.add_edge(s, f2, 4).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        let p2 = arch.add_processor("p2", "arm");
        arch.add_bus("bus", &[p0, p1, p2], us(10), us(1)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(20));
        db.set(f1, p1, us(30));
        db.set(f2, p2, us(30));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        schedule.validate(&alg, &arch).unwrap();
        let g = generate(&schedule, &alg, &arch).unwrap();
        let recvs_on = |p: usize| {
            g.executives[p]
                .instrs
                .iter()
                .filter(|i| matches!(i, Instr::Recv { .. }))
                .count()
        };
        assert_eq!(recvs_on(1) + recvs_on(2), 2, "{g:?}");
        assert!(check_deadlock_free(&g.executives).is_free());
        // Replay still matches the schedule.
        let rep = replay(&g, &arch).unwrap();
        for (op, _, end) in &rep.op_end {
            assert_eq!(schedule.slot(*op).unwrap().end, *end, "op {op}");
        }
    }

    #[test]
    fn detects_deadlock_in_crossed_receives() {
        // Two processors each waiting first for data the other sends
        // later: a genuine cyclic wait under posting semantics.
        let p0 = ProcId(0);
        let p1 = ProcId(1);
        let m = MediumId(0);
        let a = Executive {
            proc: p0,
            instrs: vec![
                Instr::Recv {
                    src_op: OpId(1),
                    medium: m,
                    from: p1,
                },
                Instr::Send {
                    src_op: OpId(0),
                    medium: m,
                    to: p1,
                },
            ],
        };
        let b = Executive {
            proc: p1,
            instrs: vec![
                Instr::Recv {
                    src_op: OpId(0),
                    medium: m,
                    from: p0,
                },
                Instr::Send {
                    src_op: OpId(1),
                    medium: m,
                    to: p0,
                },
            ],
        };
        let check = check_deadlock_free(&[a.clone(), b]);
        assert!(!check.is_free());
        let DeadlockCheck::Deadlocked { cycle, blocked } = check else {
            panic!("expected deadlock");
        };
        // Both processors are stuck at their first instruction...
        assert_eq!(blocked.len(), 2);
        assert_eq!(blocked[0].proc, p0);
        assert_eq!(blocked[0].instr, 0);
        assert_eq!(blocked[1].proc, p1);
        // ...and the extracted cycle names both waits: p0 waits on p1's
        // data, p1 waits on p0's.
        assert_eq!(cycle.len(), 2);
        let waits: Vec<(ProcId, ProcId, OpId)> =
            cycle.iter().map(|b| (b.proc, b.from, b.src_op)).collect();
        assert!(waits.contains(&(p0, p1, OpId(1))));
        assert!(waits.contains(&(p1, p0, OpId(0))));
        // Each cycle entry waits on the next (circularly).
        for (i, b) in cycle.iter().enumerate() {
            assert_eq!(b.from, cycle[(i + 1) % cycle.len()].proc);
        }
        // A lone receive with no sender at all also deadlocks, but with no
        // cycle to report: it is an orphan wait.
        let check = check_deadlock_free(&[a]);
        let DeadlockCheck::Deadlocked { cycle, blocked } = check else {
            panic!("expected deadlock");
        };
        assert!(cycle.is_empty(), "{cycle:?}");
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].from, p1);
    }

    #[test]
    fn extracts_cycle_in_three_processor_ring() {
        // p0 waits on p1, p1 waits on p2, p2 waits on p0 — and a fourth
        // processor waits on p0 from outside the ring: the cycle holds
        // exactly the ring, the blocked list all four.
        let m = MediumId(0);
        let ring = |proc: usize, from: usize| Executive {
            proc: ProcId(proc),
            instrs: vec![
                Instr::Recv {
                    src_op: OpId(from),
                    medium: m,
                    from: ProcId(from),
                },
                Instr::Send {
                    src_op: OpId(proc),
                    medium: m,
                    to: ProcId((proc + 1) % 3),
                },
            ],
        };
        let outsider = Executive {
            proc: ProcId(3),
            instrs: vec![Instr::Recv {
                src_op: OpId(0),
                medium: m,
                from: ProcId(0),
            }],
        };
        let execs = [ring(0, 1), ring(1, 2), ring(2, 0), outsider];
        let DeadlockCheck::Deadlocked { cycle, blocked } = check_deadlock_free(&execs) else {
            panic!("expected deadlock");
        };
        assert_eq!(blocked.len(), 4);
        assert_eq!(cycle.len(), 3, "{cycle:?}");
        assert!(cycle.iter().all(|b| b.proc.0 < 3), "{cycle:?}");
        for (i, b) in cycle.iter().enumerate() {
            assert_eq!(b.from, cycle[(i + 1) % cycle.len()].proc);
        }
    }

    #[test]
    fn crossed_sends_are_fine_under_posting_semantics() {
        // Both send first, then receive: no deadlock with non-blocking
        // sends (the communication sequences do the moving).
        let p0 = ProcId(0);
        let p1 = ProcId(1);
        let m = MediumId(0);
        let a = Executive {
            proc: p0,
            instrs: vec![
                Instr::Send {
                    src_op: OpId(0),
                    medium: m,
                    to: p1,
                },
                Instr::Recv {
                    src_op: OpId(1),
                    medium: m,
                    from: p1,
                },
            ],
        };
        let b = Executive {
            proc: p1,
            instrs: vec![
                Instr::Send {
                    src_op: OpId(1),
                    medium: m,
                    to: p0,
                },
                Instr::Recv {
                    src_op: OpId(0),
                    medium: m,
                    from: p0,
                },
            ],
        };
        assert!(check_deadlock_free(&[a, b]).is_free());
    }

    #[test]
    fn replay_rejects_orphan_recv() {
        let g = Generated {
            executives: vec![Executive {
                proc: ProcId(0),
                instrs: vec![Instr::Recv {
                    src_op: OpId(0),
                    medium: MediumId(0),
                    from: ProcId(1),
                }],
            }],
            comm_sequences: vec![],
        };
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("p0", "arm");
        assert!(matches!(
            replay(&g, &arch),
            Err(AaaError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn empty_executives_trivially_fine() {
        assert!(check_deadlock_free(&[]).is_free());
        let g = Generated {
            executives: vec![],
            comm_sequences: vec![],
        };
        let arch = ArchitectureGraph::new();
        let rep = replay(&g, &arch).unwrap();
        assert_eq!(rep.makespan, TimeNs::ZERO);
    }
}
