//! The static, non-preemptive schedule produced by the adequation.

use ecl_sim::TimeNs;
use ecl_telemetry::bytes::{ByteReader, ByteWriter, CodecError};
use serde::{Deserialize, Serialize};

use crate::algorithm::{AlgorithmGraph, OpId, OpKind};
use crate::architecture::{ArchitectureGraph, MediumId, ProcId};
use crate::AaaError;

/// Magic tag of the [`Schedule::to_bytes`] layout.
const SCHEDULE_MAGIC: &[u8] = b"ECLS";
/// Version of the [`Schedule::to_bytes`] layout; bump on any change.
const SCHEDULE_VERSION: u32 = 1;

/// One computation slot: operation `op` executes on `proc` during
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// The scheduled operation.
    pub op: OpId,
    /// The processor executing it.
    pub proc: ProcId,
    /// Start instant (relative to the period origin).
    pub start: TimeNs,
    /// Completion instant.
    pub end: TimeNs,
}

/// One communication slot: the data produced by `src_op` moves from `from`
/// to `to` over `medium` during `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledComm {
    /// The operation whose output is transferred.
    pub src_op: OpId,
    /// Owning (sending) processor.
    pub from: ProcId,
    /// Requesting (receiving) processor.
    pub to: ProcId,
    /// The medium carrying the transfer.
    pub medium: MediumId,
    /// Transfer start instant.
    pub start: TimeNs,
    /// Transfer completion instant.
    pub end: TimeNs,
    /// Amount of data moved.
    pub data_units: u32,
}

impl ScheduledComm {
    /// Duration of the scheduled transfer slot.
    pub fn duration(&self) -> TimeNs {
        self.end - self.start
    }
}

/// A complete static schedule: one total order of computations per
/// processor and of communications per medium.
///
/// Produced by [`adequation`](crate::adequation); consumed by the paper's
/// graph-of-delays translation (`ecl-core`) and by
/// [`codegen`](crate::codegen).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schedule {
    pub(crate) ops: Vec<ScheduledOp>,
    pub(crate) comms: Vec<ScheduledComm>,
}

impl Schedule {
    /// Creates a schedule from raw slots (mainly for tests; prefer
    /// [`adequation`](crate::adequation)).
    pub fn from_parts(ops: Vec<ScheduledOp>, comms: Vec<ScheduledComm>) -> Self {
        let mut s = Schedule { ops, comms };
        s.ops.sort_by_key(|o| (o.start, o.op));
        s.comms.sort_by_key(|c| (c.start, c.src_op, c.to));
        s
    }

    /// All computation slots, ordered by start instant.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// All communication slots, ordered by start instant.
    pub fn comms(&self) -> &[ScheduledComm] {
        &self.comms
    }

    /// The slot of operation `op`, if scheduled.
    pub fn slot(&self, op: OpId) -> Option<&ScheduledOp> {
        self.ops.iter().find(|s| s.op == op)
    }

    /// The computation sequence of processor `p`, in execution order.
    pub fn proc_sequence(&self, p: ProcId) -> Vec<&ScheduledOp> {
        self.ops.iter().filter(|s| s.proc == p).collect()
    }

    /// The transfer sequence of medium `m`, in execution order.
    pub fn medium_sequence(&self, m: MediumId) -> Vec<&ScheduledComm> {
        self.comms.iter().filter(|c| c.medium == m).collect()
    }

    /// Cost of one retransmission of communication slot `i`: the medium's
    /// transfer time for the slot's payload (latency + per-unit rate).
    /// `None` if `i` is out of range. Fault injection stretches the slot's
    /// delay by `k · comm_retry_cost` when `k` retransmissions are drawn.
    pub fn comm_retry_cost(&self, arch: &ArchitectureGraph, i: usize) -> Option<TimeNs> {
        let c = self.comms.get(i)?;
        Some(arch.transfer_time(c.medium, c.data_units))
    }

    /// The completion instant of the last computation or communication.
    pub fn makespan(&self) -> TimeNs {
        let op_end = self.ops.iter().map(|s| s.end).max().unwrap_or(TimeNs::ZERO);
        let comm_end = self
            .comms
            .iter()
            .map(|c| c.end)
            .max()
            .unwrap_or(TimeNs::ZERO);
        op_end.max(comm_end)
    }

    /// Fraction of the makespan during which processor `p` computes
    /// (`0.0` for an empty schedule).
    pub fn utilization(&self, p: ProcId) -> f64 {
        let total = self.makespan();
        if total <= TimeNs::ZERO {
            return 0.0;
        }
        let busy: TimeNs = self
            .ops
            .iter()
            .filter(|s| s.proc == p)
            .map(|s| s.end - s.start)
            .sum();
        busy.as_nanos() as f64 / total.as_nanos() as f64
    }

    /// Completion instants of the sensor operations — the per-input
    /// sampling latencies `Ls_j` of the paper's eq. (1) when the schedule
    /// starts at the period origin.
    pub fn sensor_instants(&self, alg: &AlgorithmGraph) -> Vec<(OpId, TimeNs)> {
        self.kind_instants(alg, OpKind::Sensor)
    }

    /// Completion instants of the actuator operations — the per-output
    /// actuation latencies `La_j` of the paper's eq. (2).
    pub fn actuator_instants(&self, alg: &AlgorithmGraph) -> Vec<(OpId, TimeNs)> {
        self.kind_instants(alg, OpKind::Actuator)
    }

    fn kind_instants(&self, alg: &AlgorithmGraph, kind: OpKind) -> Vec<(OpId, TimeNs)> {
        self.ops
            .iter()
            .filter(|s| alg.kind(s.op) == kind)
            .map(|s| (s.op, s.end))
            .collect()
    }

    /// Checks the structural soundness of the schedule against its
    /// algorithm and architecture:
    ///
    /// 1. every operation scheduled exactly once, with `start <= end`;
    /// 2. no overlap within a processor or a medium;
    /// 3. every data dependency satisfied — same-processor predecessors
    ///    complete before the consumer starts; cross-processor ones have a
    ///    communication slot that starts after the producer ends and
    ///    finishes before the consumer starts, on a medium connecting the
    ///    two processors.
    ///
    /// # Errors
    ///
    /// Returns [`AaaError::InvalidSchedule`] naming the violated property.
    pub fn validate(&self, alg: &AlgorithmGraph, arch: &ArchitectureGraph) -> Result<(), AaaError> {
        let bad = |reason: String| Err(AaaError::InvalidSchedule { reason });
        // 1. coverage and sanity
        for op in alg.ops() {
            let count = self.ops.iter().filter(|s| s.op == op).count();
            if count != 1 {
                return bad(format!(
                    "operation '{}' scheduled {count} times",
                    alg.name(op)
                ));
            }
        }
        for s in &self.ops {
            if s.end < s.start {
                return bad(format!(
                    "operation '{}' ends before it starts",
                    alg.name(s.op)
                ));
            }
            arch.check_proc(s.proc)
                .map_err(|_| AaaError::InvalidSchedule {
                    reason: format!("operation '{}' on unknown processor", alg.name(s.op)),
                })?;
        }
        // 2. non-overlap per processor
        for p in arch.processors() {
            let mut seq = self.proc_sequence(p);
            seq.sort_by_key(|s| s.start);
            for w in seq.windows(2) {
                if w[1].start < w[0].end {
                    return bad(format!(
                        "operations '{}' and '{}' overlap on {}",
                        alg.name(w[0].op),
                        alg.name(w[1].op),
                        arch.proc_name(p)
                    ));
                }
            }
        }
        // ... and per medium. The stored order is checked verbatim (not a
        // sorted copy): codegen and the executive VM both replay it as the
        // medium's transfer sequence, so an out-of-order sequence is a bug
        // even when a sorted view of it would be overlap-free.
        for m in arch.media() {
            let seq = self.medium_sequence(m);
            for w in seq.windows(2) {
                if w[1].start < w[0].start {
                    return Err(AaaError::CommConflict {
                        medium: arch.medium_name(m).to_string(),
                        reason: format!(
                            "transfer of '{}' is stored after '{}' but starts earlier",
                            alg.name(w[1].src_op),
                            alg.name(w[0].src_op)
                        ),
                    });
                }
                if w[1].start < w[0].end {
                    return Err(AaaError::CommConflict {
                        medium: arch.medium_name(m).to_string(),
                        reason: format!(
                            "transfers of '{}' and '{}' overlap",
                            alg.name(w[0].src_op),
                            alg.name(w[1].src_op)
                        ),
                    });
                }
            }
        }
        // 3. dependencies
        for e in alg.edges() {
            let ps = self.slot(e.src).expect("covered above");
            let pd = self.slot(e.dst).expect("covered above");
            if ps.proc == pd.proc {
                if ps.end > pd.start {
                    return bad(format!(
                        "'{}' starts before its predecessor '{}' completes",
                        alg.name(e.dst),
                        alg.name(e.src)
                    ));
                }
            } else {
                let ok = self.comms.iter().any(|c| {
                    c.src_op == e.src
                        && c.to == pd.proc
                        && c.start >= ps.end
                        && c.end <= pd.start
                        && arch.medium_procs(c.medium).contains(&c.from)
                        && arch.medium_procs(c.medium).contains(&c.to)
                });
                // A broadcast transfer to a third processor also delivers
                // the data here if the medium reaches pd.proc.
                let ok_broadcast = ok
                    || self.comms.iter().any(|c| {
                        c.src_op == e.src
                            && c.start >= ps.end
                            && c.end <= pd.start
                            && arch.medium_procs(c.medium).contains(&pd.proc)
                    });
                if !ok_broadcast {
                    return bad(format!(
                        "no communication delivers '{}' from {} to {} before '{}' starts",
                        alg.name(e.src),
                        arch.proc_name(ps.proc),
                        arch.proc_name(pd.proc),
                        alg.name(e.dst)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serializes the schedule for the content-addressed on-disk cache
    /// (`results/cache/schedules/`): magic + version, then every slot
    /// field little-endian. The `serde` shims are no-ops in this offline
    /// workspace, so persistence is hand-rolled on
    /// [`ecl_telemetry::bytes`]. Invalidation is by digest: files are
    /// named by [`schedule_digest`](crate::schedule_digest), so a cached
    /// schedule can never be served for changed scheduler inputs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(16 + self.ops.len() * 32 + self.comms.len() * 56);
        w.put_raw(SCHEDULE_MAGIC);
        w.put_u32(SCHEDULE_VERSION);
        w.put_seq_len(self.ops.len());
        for o in &self.ops {
            w.put_usize(o.op.index());
            w.put_usize(o.proc.index());
            w.put_i64(o.start.as_nanos());
            w.put_i64(o.end.as_nanos());
        }
        w.put_seq_len(self.comms.len());
        for c in &self.comms {
            w.put_usize(c.src_op.index());
            w.put_usize(c.from.index());
            w.put_usize(c.to.index());
            w.put_usize(c.medium.index());
            w.put_i64(c.start.as_nanos());
            w.put_i64(c.end.as_nanos());
            w.put_u32(c.data_units);
        }
        w.into_bytes()
    }

    /// Reconstructs a schedule serialized by [`to_bytes`], consuming the
    /// whole buffer. Corruption (bad magic, truncation, trailing bytes)
    /// decodes to a typed [`CodecError`], never a panic, so a damaged
    /// cache file is skipped rather than trusted.
    ///
    /// [`to_bytes`]: Schedule::to_bytes
    ///
    /// # Errors
    ///
    /// Returns the structural [`CodecError`] describing the corruption.
    pub fn from_bytes(bytes: &[u8]) -> Result<Schedule, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_magic(SCHEDULE_MAGIC)?;
        let version = r.get_u32()?;
        if version != SCHEDULE_VERSION {
            return Err(CodecError::BadMagic {
                expected: format!("schedule v{SCHEDULE_VERSION}"),
                found: format!("schedule v{version}"),
            });
        }
        let n_ops = r.get_seq_len()?;
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            ops.push(ScheduledOp {
                op: OpId(r.get_usize()?),
                proc: ProcId(r.get_usize()?),
                start: TimeNs::from_nanos(r.get_i64()?),
                end: TimeNs::from_nanos(r.get_i64()?),
            });
        }
        let n_comms = r.get_seq_len()?;
        let mut comms = Vec::with_capacity(n_comms);
        for _ in 0..n_comms {
            comms.push(ScheduledComm {
                src_op: OpId(r.get_usize()?),
                from: ProcId(r.get_usize()?),
                to: ProcId(r.get_usize()?),
                medium: MediumId(r.get_usize()?),
                start: TimeNs::from_nanos(r.get_i64()?),
                end: TimeNs::from_nanos(r.get_i64()?),
                data_units: r.get_u32()?,
            });
        }
        r.finish()?;
        // `from_parts` re-sorts, so even a hand-edited file decodes to a
        // schedule honoring the stored-order invariants.
        Ok(Schedule::from_parts(ops, comms))
    }

    /// Renders a human-readable Gantt-style listing of the schedule.
    pub fn render(&self, alg: &AlgorithmGraph, arch: &ArchitectureGraph) -> String {
        let mut s = String::new();
        for p in arch.processors() {
            s.push_str(&format!("processor {}:\n", arch.proc_name(p)));
            for slot in self.proc_sequence(p) {
                s.push_str(&format!(
                    "  [{} .. {}] {}\n",
                    slot.start,
                    slot.end,
                    alg.name(slot.op)
                ));
            }
        }
        for m in arch.media() {
            s.push_str(&format!("medium {}:\n", arch.medium_name(m)));
            for c in self.medium_sequence(m) {
                s.push_str(&format!(
                    "  [{} .. {}] {} : {} -> {}\n",
                    c.start,
                    c.end,
                    alg.name(c.src_op),
                    arch.proc_name(c.from),
                    arch.proc_name(c.to)
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (AlgorithmGraph, ArchitectureGraph) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        let a = alg.add_actuator("a");
        alg.add_edge(s, f, 1).unwrap();
        alg.add_edge(f, a, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus(
            "bus",
            &[p0, p1],
            TimeNs::from_micros(10),
            TimeNs::from_micros(1),
        )
        .unwrap();
        (alg, arch)
    }

    fn ms(v: i64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn valid_split_schedule() -> Schedule {
        // s,f on p0; a on p1 with a comm in between.
        Schedule::from_parts(
            vec![
                ScheduledOp {
                    op: OpId(0),
                    proc: ProcId(0),
                    start: ms(0),
                    end: ms(1),
                },
                ScheduledOp {
                    op: OpId(1),
                    proc: ProcId(0),
                    start: ms(1),
                    end: ms(3),
                },
                ScheduledOp {
                    op: OpId(2),
                    proc: ProcId(1),
                    start: ms(4),
                    end: ms(5),
                },
            ],
            vec![ScheduledComm {
                src_op: OpId(1),
                from: ProcId(0),
                to: ProcId(1),
                medium: MediumId(0),
                start: ms(3),
                end: ms(4),
                data_units: 1,
            }],
        )
    }

    #[test]
    fn valid_schedule_passes() {
        let (alg, arch) = toy();
        let s = valid_split_schedule();
        s.validate(&alg, &arch).unwrap();
        assert_eq!(s.makespan(), ms(5));
        assert_eq!(s.proc_sequence(ProcId(0)).len(), 2);
        assert_eq!(s.medium_sequence(MediumId(0)).len(), 1);
        assert!((s.utilization(ProcId(0)) - 0.6).abs() < 1e-12);
        assert!((s.utilization(ProcId(1)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn io_instants() {
        let (alg, _arch) = toy();
        let s = valid_split_schedule();
        assert_eq!(s.sensor_instants(&alg), vec![(OpId(0), ms(1))]);
        assert_eq!(s.actuator_instants(&alg), vec![(OpId(2), ms(5))]);
    }

    #[test]
    fn missing_op_rejected() {
        let (alg, arch) = toy();
        let mut s = valid_split_schedule();
        s.ops.pop();
        assert!(matches!(
            s.validate(&alg, &arch),
            Err(AaaError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn overlap_on_processor_rejected() {
        let (alg, arch) = toy();
        let mut s = valid_split_schedule();
        // Make f start before s ends on the same processor.
        s.ops[1].start = TimeNs::from_micros(500);
        assert!(s.validate(&alg, &arch).is_err());
    }

    #[test]
    fn missing_comm_rejected() {
        let (alg, arch) = toy();
        let mut s = valid_split_schedule();
        s.comms.clear();
        let err = s.validate(&alg, &arch).unwrap_err();
        assert!(err.to_string().contains("no communication"));
    }

    #[test]
    fn late_comm_rejected() {
        let (alg, arch) = toy();
        let mut s = valid_split_schedule();
        // Comm finishes after the consumer starts.
        s.comms[0].end = ms(4) + TimeNs::from_micros(1);
        assert!(s.validate(&alg, &arch).is_err());
    }

    #[test]
    fn dependency_order_on_same_proc_rejected() {
        let (alg, arch) = toy();
        let s = Schedule::from_parts(
            vec![
                ScheduledOp {
                    op: OpId(0),
                    proc: ProcId(0),
                    start: ms(2),
                    end: ms(3),
                },
                ScheduledOp {
                    op: OpId(1),
                    proc: ProcId(0),
                    start: ms(0),
                    end: ms(1),
                },
                ScheduledOp {
                    op: OpId(2),
                    proc: ProcId(0),
                    start: ms(4),
                    end: ms(5),
                },
            ],
            vec![],
        );
        assert!(s.validate(&alg, &arch).is_err());
    }

    #[test]
    fn render_lists_everything() {
        let (alg, arch) = toy();
        let s = valid_split_schedule();
        let text = s.render(&alg, &arch);
        assert!(text.contains("processor p0"));
        assert!(text.contains("medium bus"));
        assert!(text.contains("f"));
    }

    #[test]
    fn byte_codec_round_trips() {
        let s = valid_split_schedule();
        let bytes = s.to_bytes();
        let back = Schedule::from_bytes(&bytes).unwrap();
        assert_eq!(back.ops(), s.ops());
        assert_eq!(back.comms(), s.comms());
        // Encoding is canonical: re-encoding the decode is byte-identical.
        assert_eq!(back.to_bytes(), bytes);
        // The empty schedule round-trips too.
        let empty = Schedule::default();
        assert_eq!(
            Schedule::from_bytes(&empty.to_bytes()).unwrap().ops(),
            empty.ops()
        );
    }

    #[test]
    fn byte_codec_rejects_corruption() {
        let s = valid_split_schedule();
        let bytes = s.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Schedule::from_bytes(&bad),
            Err(CodecError::BadMagic { .. })
        ));
        // Unknown version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Schedule::from_bytes(&bad),
            Err(CodecError::BadMagic { .. })
        ));
        // Truncation at every prefix length decodes to an error, never a
        // panic or a silently short schedule.
        for cut in 0..bytes.len() {
            assert!(Schedule::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is refused.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            Schedule::from_bytes(&long),
            Err(CodecError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::default();
        assert_eq!(s.makespan(), TimeNs::ZERO);
        assert_eq!(s.utilization(ProcId(0)), 0.0);
        assert!(s.slot(OpId(0)).is_none());
    }

    #[test]
    fn zero_makespan_utilization_is_zero() {
        // Degenerate but non-empty: a zero-length slot at the origin must
        // not divide by a zero makespan.
        let s = Schedule::from_parts(
            vec![ScheduledOp {
                op: OpId(0),
                proc: ProcId(0),
                start: ms(0),
                end: ms(0),
            }],
            vec![],
        );
        assert_eq!(s.makespan(), TimeNs::ZERO);
        assert_eq!(s.utilization(ProcId(0)), 0.0);
    }

    #[test]
    fn overlapping_comms_on_medium_rejected() {
        let (alg, arch) = toy();
        let mut s = valid_split_schedule();
        // A second transfer on the bus that starts before the first ends.
        s.comms.push(ScheduledComm {
            src_op: OpId(0),
            from: ProcId(0),
            to: ProcId(1),
            medium: MediumId(0),
            start: ms(3) + TimeNs::from_micros(500),
            end: ms(4) + TimeNs::from_micros(500),
            data_units: 1,
        });
        let err = s.validate(&alg, &arch).unwrap_err();
        assert!(matches!(err, AaaError::CommConflict { ref medium, .. } if medium == "bus"));
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn unsorted_medium_sequence_rejected() {
        let (alg, arch) = toy();
        let mut s = valid_split_schedule();
        // A disjoint transfer appended out of order: sorted views of the
        // bus sequence are overlap-free, but the stored order is wrong.
        s.comms.push(ScheduledComm {
            src_op: OpId(0),
            from: ProcId(0),
            to: ProcId(1),
            medium: MediumId(0),
            start: ms(1),
            end: ms(2),
            data_units: 1,
        });
        let err = s.validate(&alg, &arch).unwrap_err();
        assert!(matches!(err, AaaError::CommConflict { ref medium, .. } if medium == "bus"));
        assert!(err.to_string().contains("starts earlier"));
    }
}
