//! The adequation heuristic: greedy list scheduling of the algorithm graph
//! onto the architecture graph.
//!
//! This reimplements the core of SynDEx's "adequation" (Grandpierre &
//! Sorel, MEMOCODE 2003): at each step, among the *candidate* operations
//! (all predecessors scheduled), map the most urgent one onto the
//! processor that completes it earliest, inserting the required
//! communications on the media. Urgency is the *schedule pressure*: the
//! candidate's best completion time plus the optimistic critical path
//! remaining below it — operations on the global critical path are placed
//! first, which is what makes the heuristic competitive with much more
//! expensive searches on control-dominated graphs.

use std::collections::HashMap;

use ecl_sim::TimeNs;

use crate::algorithm::{AlgorithmGraph, OpId};
use crate::architecture::{ArchitectureGraph, MediumId, MediumKind, ProcId};
use crate::schedule::{Schedule, ScheduledComm, ScheduledOp};
use crate::timing::TimingDb;
use crate::AaaError;

/// Candidate-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingPolicy {
    /// Schedule-pressure list scheduling (the SynDEx heuristic): pick the
    /// candidate with the longest `finish + remaining critical path`, map
    /// it to its earliest-finishing processor.
    SchedulePressure,
    /// Plain earliest-finish-time: pick the candidate/processor pair with
    /// the globally smallest finish time (HEFT-like, ablation baseline).
    EarliestFinish,
    /// Uniformly random candidate and processor (seeded, deterministic) —
    /// the quality floor for experiment E9.
    Random {
        /// PRNG seed (xorshift64).
        seed: u64,
    },
}

/// Options controlling [`adequation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdequationOptions {
    /// Candidate-selection policy.
    pub policy: MappingPolicy,
}

impl Default for AdequationOptions {
    fn default() -> Self {
        AdequationOptions {
            policy: MappingPolicy::SchedulePressure,
        }
    }
}

/// Minimal deterministic PRNG so the `Random` baseline needs no external
/// dependency.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    /// Uniform sample in `[0, n)` by rejection: draws whose remainder
    /// region is the truncated tail of the 2^64 range are retried, so no
    /// residue class is over-represented (`next() % n` would bias the
    /// `Random` ablation baseline toward low indices for `n` not a power
    /// of two).
    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next();
            if x < zone {
                return (x % n) as usize;
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CommPlan {
    medium: MediumId,
    start: TimeNs,
    end: TimeNs,
    data_units: u32,
    src_op: OpId,
    from: ProcId,
}

struct State<'a> {
    alg: &'a AlgorithmGraph,
    arch: &'a ArchitectureGraph,
    db: &'a TimingDb,
    proc_free: Vec<TimeNs>,
    medium_free: Vec<TimeNs>,
    /// Earliest instant at which `op`'s output is available on `proc`.
    data_avail: HashMap<(OpId, ProcId), TimeNs>,
    placed: Vec<Option<ScheduledOp>>,
    comms: Vec<ScheduledComm>,
}

impl State<'_> {
    /// Plans the arrival of `src`'s data on `target`, returning the comm to
    /// insert (`None` if the data is already available there) and the
    /// availability instant. Does not mutate the state.
    fn plan_arrival(
        &self,
        src: OpId,
        target: ProcId,
        data_units: u32,
    ) -> Result<(Option<CommPlan>, TimeNs), AaaError> {
        if let Some(&t) = self.data_avail.get(&(src, target)) {
            return Ok((None, t));
        }
        let owner = self.placed[src.index()]
            .as_ref()
            .expect("predecessor scheduled")
            .proc;
        let ready = self.data_avail[&(src, owner)];
        let mut best: Option<CommPlan> = None;
        for m in self.arch.media_between(owner, target) {
            let start = self.medium_free[m.index()].max(ready);
            let end = start + self.arch.transfer_time(m, data_units);
            if best.is_none_or(|b| end < b.end) {
                best = Some(CommPlan {
                    medium: m,
                    start,
                    end,
                    data_units,
                    src_op: src,
                    from: owner,
                });
            }
        }
        match best {
            Some(plan) => Ok((Some(plan), plan.end)),
            None => Err(AaaError::NoRoute {
                from: self.arch.proc_name(owner).to_string(),
                to: self.arch.proc_name(target).to_string(),
            }),
        }
    }

    /// Earliest start/finish of `op` on `proc`, with the comms it would
    /// require. Returns `None` if `op` cannot execute on `proc`.
    fn evaluate(
        &self,
        op: OpId,
        proc: ProcId,
    ) -> Result<Option<(TimeNs, TimeNs, Vec<CommPlan>)>, AaaError> {
        let Some(wcet) = self.db.wcet(op, proc) else {
            return Ok(None);
        };
        let mut est = self.proc_free[proc.index()];
        let mut plans = Vec::new();
        for e in self.alg.edges().iter().filter(|e| e.dst == op) {
            match self.plan_arrival(e.src, proc, e.data_units) {
                Ok((plan, avail)) => {
                    est = est.max(avail);
                    if let Some(p) = plan {
                        plans.push(p);
                    }
                }
                Err(AaaError::NoRoute { .. }) => return Ok(None),
                Err(other) => return Err(other),
            }
        }
        // NOTE: `plans` computed against the *current* medium availability;
        // if two predecessors pick the same medium the commit step
        // re-plans sequentially, so the tentative estimate is a lower
        // bound — standard for list scheduling.
        Ok(Some((est, est + wcet, plans)))
    }

    /// Commits `op` on `proc`: re-plans and inserts the communications
    /// sequentially, then places the operation.
    fn commit(&mut self, op: OpId, proc: ProcId) -> Result<(), AaaError> {
        let wcet = self.db.wcet(op, proc).expect("validated by evaluate");
        let mut est = self.proc_free[proc.index()];
        let edges: Vec<_> = self
            .alg
            .edges()
            .iter()
            .filter(|e| e.dst == op)
            .copied()
            .collect();
        for e in edges {
            let (plan, avail) = self.plan_arrival(e.src, proc, e.data_units)?;
            if let Some(p) = plan {
                self.medium_free[p.medium.index()] = p.end;
                self.comms.push(ScheduledComm {
                    src_op: p.src_op,
                    from: p.from,
                    to: proc,
                    medium: p.medium,
                    start: p.start,
                    end: p.end,
                    data_units: p.data_units,
                });
                // Broadcast media deliver to every connected processor.
                match self.arch.medium_kind(p.medium) {
                    MediumKind::Bus => {
                        for &q in self.arch.medium_procs(p.medium) {
                            self.data_avail.entry((e.src, q)).or_insert(p.end);
                        }
                    }
                    MediumKind::PointToPoint => {
                        self.data_avail.entry((e.src, proc)).or_insert(p.end);
                    }
                }
            }
            est = est.max(avail.max(self.data_avail[&(e.src, proc)]));
        }
        let slot = ScheduledOp {
            op,
            proc,
            start: est,
            end: est + wcet,
        };
        self.proc_free[proc.index()] = slot.end;
        self.data_avail.insert((op, proc), slot.end);
        self.placed[op.index()] = Some(slot);
        Ok(())
    }
}

/// Optimistic remaining critical path below each operation (its own
/// minimal WCET included, communications ignored).
fn tails(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
) -> Result<Vec<TimeNs>, AaaError> {
    let order = alg.topo_order()?;
    let procs: Vec<ProcId> = arch.processors().collect();
    let mut tail = vec![TimeNs::ZERO; alg.len()];
    for &op in order.iter().rev() {
        let own = db.min_wcet(op, procs.iter().copied(), alg.name(op))?;
        let below = alg
            .succs(op)
            .into_iter()
            .map(|s| tail[s.index()])
            .max()
            .unwrap_or(TimeNs::ZERO);
        tail[op.index()] = own + below;
    }
    Ok(tail)
}

/// Runs the adequation: distributes and schedules `alg` onto `arch` using
/// the WCETs in `db`.
///
/// # Errors
///
/// * [`AaaError::InvalidGraph`] if the architecture has no processors.
/// * [`AaaError::CyclicAlgorithm`] for a cyclic algorithm graph.
/// * [`AaaError::Unimplementable`] if some operation has no capable
///   processor.
/// * [`AaaError::NoRoute`] if a required transfer has no medium.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn adequation(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
    options: AdequationOptions,
) -> Result<Schedule, AaaError> {
    if arch.num_processors() == 0 {
        return Err(AaaError::InvalidGraph {
            reason: "architecture has no processors".into(),
        });
    }
    alg.topo_order()?; // cycle check up front
    let tail = tails(alg, arch, db)?;
    let procs: Vec<ProcId> = arch.processors().collect();

    let mut state = State {
        alg,
        arch,
        db,
        proc_free: vec![TimeNs::ZERO; arch.num_processors()],
        medium_free: vec![TimeNs::ZERO; arch.num_media()],
        data_avail: HashMap::new(),
        placed: vec![None; alg.len()],
        comms: Vec::new(),
    };
    let mut rng = match options.policy {
        MappingPolicy::Random { seed } => Some(XorShift64::new(seed)),
        _ => None,
    };

    let mut remaining = alg.len();
    while remaining > 0 {
        // Candidates: unscheduled ops whose predecessors are all placed.
        let candidates: Vec<OpId> = alg
            .ops()
            .filter(|&o| state.placed[o.index()].is_none())
            .filter(|&o| {
                alg.preds(o)
                    .iter()
                    .all(|p| state.placed[p.index()].is_some())
            })
            .collect();
        debug_assert!(!candidates.is_empty(), "DAG always has a candidate");

        // Evaluate each candidate's best processor.
        let mut evals: Vec<(OpId, ProcId, TimeNs)> = Vec::new(); // (op, best proc, finish)
        for &c in &candidates {
            let mut best: Option<(ProcId, TimeNs)> = None;
            for &p in &procs {
                if let Some((_, finish, _)) = state.evaluate(c, p)? {
                    if best.is_none_or(|(_, bf)| finish < bf) {
                        best = Some((p, finish));
                    }
                }
            }
            let (bp, bf) = best.ok_or_else(|| AaaError::Unimplementable {
                op: alg.name(c).to_string(),
            })?;
            evals.push((c, bp, bf));
        }

        // Select per policy.
        let (op, proc) = match options.policy {
            MappingPolicy::SchedulePressure => {
                // pressure = finish + optimistic remaining path below (op's
                // own WCET subtracted since finish already includes it).
                let pick = evals
                    .iter()
                    .max_by_key(|(c, _, f)| {
                        let below = tail[c.index()];
                        (*f + below, std::cmp::Reverse(*c))
                    })
                    .expect("non-empty");
                (pick.0, pick.1)
            }
            MappingPolicy::EarliestFinish => {
                let pick = evals
                    .iter()
                    .min_by_key(|(c, _, f)| (*f, *c))
                    .expect("non-empty");
                (pick.0, pick.1)
            }
            MappingPolicy::Random { .. } => {
                let rng = rng.as_mut().expect("seeded above");
                let (c, _, _) = evals[rng.below(evals.len())];
                // Pick uniformly among processors able to run it.
                let able: Vec<ProcId> = procs
                    .iter()
                    .copied()
                    .filter(|&p| {
                        db.wcet(c, p).is_some() && matches!(state.evaluate(c, p), Ok(Some(_)))
                    })
                    .collect();
                (c, able[rng.below(able.len())])
            }
        };
        state.commit(op, proc)?;
        remaining -= 1;
    }

    let ops = state
        .placed
        .into_iter()
        .map(|s| s.expect("all placed"))
        .collect();
    Ok(Schedule::from_parts(ops, state.comms))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    /// sensor -> {f1, f2} -> join -> actuator, uniform WCETs.
    fn diamond() -> (AlgorithmGraph, Vec<OpId>) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f1 = alg.add_function("f1");
        let f2 = alg.add_function("f2");
        let j = alg.add_function("join");
        let a = alg.add_actuator("a");
        alg.add_edge(s, f1, 1).unwrap();
        alg.add_edge(s, f2, 1).unwrap();
        alg.add_edge(f1, j, 1).unwrap();
        alg.add_edge(f2, j, 1).unwrap();
        alg.add_edge(j, a, 1).unwrap();
        (alg, vec![s, f1, f2, j, a])
    }

    fn arch_n(n: usize, latency_us: i64, per_unit_us: i64) -> ArchitectureGraph {
        let mut arch = ArchitectureGraph::new();
        let procs: Vec<ProcId> = (0..n)
            .map(|i| arch.add_processor(format!("p{i}"), "arm"))
            .collect();
        if n > 1 {
            arch.add_bus("bus", &procs, us(latency_us), us(per_unit_us))
                .unwrap();
        }
        arch
    }

    fn uniform_db(alg: &AlgorithmGraph, wcet_us: i64) -> TimingDb {
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, us(wcet_us));
        }
        db
    }

    #[test]
    fn single_processor_chains_sequentially() {
        let (alg, ops) = diamond();
        let arch = arch_n(1, 0, 0);
        let db = uniform_db(&alg, 100);
        let s = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        s.validate(&alg, &arch).unwrap();
        assert_eq!(s.makespan(), us(500));
        assert!(s.comms().is_empty());
        // Sensor first, actuator last.
        assert_eq!(s.slot(ops[0]).unwrap().start, TimeNs::ZERO);
        assert_eq!(s.slot(ops[4]).unwrap().end, us(500));
    }

    #[test]
    fn two_processors_exploit_parallelism_when_comm_is_cheap() {
        let (alg, _) = diamond();
        let arch = arch_n(2, 1, 0); // nearly free comm
        let db = uniform_db(&alg, 100);
        let s = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        s.validate(&alg, &arch).unwrap();
        // f1 and f2 can run in parallel: makespan < 500us sequential.
        assert!(
            s.makespan() < us(500),
            "expected speedup, got {}",
            s.makespan()
        );
        assert!(!s.comms().is_empty());
    }

    #[test]
    fn expensive_comm_keeps_everything_local() {
        let (alg, _) = diamond();
        let arch = arch_n(2, 10_000, 1_000);
        let db = uniform_db(&alg, 100);
        let s = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        s.validate(&alg, &arch).unwrap();
        // With comm latency 100x the WCET, distributing can only hurt; the
        // heuristic must keep the makespan at the sequential bound.
        assert_eq!(s.makespan(), us(500));
        assert!(s.comms().is_empty());
    }

    #[test]
    fn heterogeneity_respected() {
        // f can only run on p1.
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        alg.add_edge(s, f, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "dsp");
        arch.add_bus("bus", &[p0, p1], us(1), us(1)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(10));
        db.set(f, p1, us(10)); // f has no entry for p0
        let sched = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        sched.validate(&alg, &arch).unwrap();
        assert_eq!(sched.slot(f).unwrap().proc, p1);
        assert_eq!(sched.slot(s).unwrap().proc, p0);
        assert_eq!(sched.comms().len(), 1);
    }

    #[test]
    fn unimplementable_detected() {
        let mut alg = AlgorithmGraph::new();
        let f = alg.add_function("f");
        let _ = f;
        let arch = arch_n(1, 0, 0);
        let db = TimingDb::new(); // empty: f cannot run anywhere
        assert!(matches!(
            adequation(&alg, &arch, &db, AdequationOptions::default()),
            Err(AaaError::Unimplementable { .. })
        ));
    }

    #[test]
    fn no_processors_rejected() {
        let alg = AlgorithmGraph::new();
        let arch = ArchitectureGraph::new();
        let db = TimingDb::new();
        assert!(matches!(
            adequation(&alg, &arch, &db, AdequationOptions::default()),
            Err(AaaError::InvalidGraph { .. })
        ));
    }

    #[test]
    fn no_route_detected() {
        // Two processors, no medium, but f forced onto p1 while its input
        // is produced on p0.
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        alg.add_edge(s, f, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        let mut db = TimingDb::new();
        db.set(s, p0, us(10));
        db.set(f, p1, us(10));
        let r = adequation(&alg, &arch, &db, AdequationOptions::default());
        assert!(matches!(r, Err(AaaError::Unimplementable { .. })), "{r:?}");
    }

    #[test]
    fn policies_all_produce_valid_schedules() {
        let (alg, _) = diamond();
        let arch = arch_n(3, 5, 1);
        let db = uniform_db(&alg, 100);
        for policy in [
            MappingPolicy::SchedulePressure,
            MappingPolicy::EarliestFinish,
            MappingPolicy::Random { seed: 42 },
            MappingPolicy::Random { seed: 7 },
        ] {
            let s = adequation(&alg, &arch, &db, AdequationOptions { policy }).unwrap();
            s.validate(&alg, &arch).unwrap();
        }
    }

    #[test]
    fn pressure_no_worse_than_random() {
        let (alg, _) = diamond();
        let arch = arch_n(2, 20, 5);
        let db = uniform_db(&alg, 100);
        let sp = adequation(&alg, &arch, &db, AdequationOptions::default())
            .unwrap()
            .makespan();
        // Best of a few random seeds.
        let rnd = (0..5)
            .map(|seed| {
                adequation(
                    &alg,
                    &arch,
                    &db,
                    AdequationOptions {
                        policy: MappingPolicy::Random { seed },
                    },
                )
                .unwrap()
                .makespan()
            })
            .min()
            .unwrap();
        assert!(sp <= rnd, "pressure {sp} vs best random {rnd}");
    }

    #[test]
    fn deterministic_across_runs() {
        let (alg, _) = diamond();
        let arch = arch_n(2, 5, 1);
        let db = uniform_db(&alg, 100);
        let a = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        let b = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        assert_eq!(a.ops(), b.ops());
        assert_eq!(a.comms(), b.comms());
    }

    #[test]
    fn below_is_unbiased_and_in_range() {
        // n = 3 does not divide 2^64: the old `next() % n` over-represents
        // the residues below 2^64 mod 3. With rejection sampling the three
        // cells of a long run must be balanced to well under the modulo
        // bias would allow on an adversarial generator, and every draw is
        // in range.
        let mut rng = XorShift64::new(42);
        let mut counts = [0usize; 3];
        const DRAWS: usize = 30_000;
        for _ in 0..DRAWS {
            let v = rng.below(3);
            assert!(v < 3);
            counts[v] += 1;
        }
        let expected = DRAWS as f64 / 3.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "cell {i} off by {:.1}%", dev * 100.0);
        }
        // Determinism: the same seed replays the same stream.
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.below(13), b.below(13));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        XorShift64::new(1).below(0);
    }

    #[test]
    fn bus_broadcast_reuses_transfer() {
        // One producer read by two consumers pinned on a remote processor:
        // the data crosses the bus once.
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f1 = alg.add_function("f1");
        let f2 = alg.add_function("f2");
        alg.add_edge(s, f1, 8).unwrap();
        alg.add_edge(s, f2, 8).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus("bus", &[p0, p1], us(10), us(1)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(10));
        db.set(f1, p1, us(10));
        db.set(f2, p1, us(10));
        let sched = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        sched.validate(&alg, &arch).unwrap();
        assert_eq!(sched.comms().len(), 1, "{:?}", sched.comms());
    }
}
