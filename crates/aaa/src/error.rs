use std::error::Error;
use std::fmt;

use ecl_sim::TimeNs;

/// Errors produced while building AAA models or running the adequation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AaaError {
    /// An operation id did not belong to the algorithm graph.
    UnknownOp {
        /// The offending index.
        index: usize,
    },
    /// A processor id did not belong to the architecture graph.
    UnknownProcessor {
        /// The offending index.
        index: usize,
    },
    /// A medium id did not belong to the architecture graph.
    UnknownMedium {
        /// The offending index.
        index: usize,
    },
    /// The algorithm graph contains a dependency cycle.
    CyclicAlgorithm {
        /// Names of operations on the residual cycle.
        ops: Vec<String>,
    },
    /// Graph construction data was inconsistent (duplicate edge, self-loop,
    /// bad conditioning, empty bus, ...).
    InvalidGraph {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// No processor can execute an operation (empty WCET row).
    Unimplementable {
        /// The operation's name.
        op: String,
    },
    /// Two processors that must exchange data share no communication
    /// medium.
    NoRoute {
        /// Source processor name.
        from: String,
        /// Destination processor name.
        to: String,
    },
    /// A produced schedule failed validation.
    InvalidSchedule {
        /// Explanation of the violated property.
        reason: String,
    },
    /// A medium's transfer sequence is inconsistent: two slots overlap,
    /// or the stored order is not sorted by start instant (the executive
    /// generator and the VM both consume the stored order verbatim).
    CommConflict {
        /// The medium's name.
        medium: String,
        /// Explanation of the conflict.
        reason: String,
    },
    /// A `.sdx` project file failed to parse.
    ParseSdx {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the syntax or reference error.
        reason: String,
    },
    /// A timing value was invalid (negative WCET, ...).
    InvalidTiming {
        /// Explanation of the violation.
        reason: String,
        /// The offending value.
        value: TimeNs,
    },
}

impl fmt::Display for AaaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AaaError::UnknownOp { index } => write!(f, "unknown operation id {index}"),
            AaaError::UnknownProcessor { index } => write!(f, "unknown processor id {index}"),
            AaaError::UnknownMedium { index } => write!(f, "unknown medium id {index}"),
            AaaError::CyclicAlgorithm { ops } => {
                write!(
                    f,
                    "algorithm graph has a cycle through: {}",
                    ops.join(" -> ")
                )
            }
            AaaError::InvalidGraph { reason } => write!(f, "invalid graph: {reason}"),
            AaaError::Unimplementable { op } => {
                write!(f, "operation '{op}' has no processor able to execute it")
            }
            AaaError::NoRoute { from, to } => {
                write!(f, "no communication medium connects '{from}' to '{to}'")
            }
            AaaError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
            AaaError::CommConflict { medium, reason } => {
                write!(f, "communication conflict on '{medium}': {reason}")
            }
            AaaError::ParseSdx { line, reason } => {
                write!(f, "sdx parse error at line {line}: {reason}")
            }
            AaaError::InvalidTiming { reason, value } => {
                write!(f, "invalid timing value {value}: {reason}")
            }
        }
    }
}

impl Error for AaaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = vec![
            AaaError::UnknownOp { index: 1 },
            AaaError::UnknownProcessor { index: 1 },
            AaaError::UnknownMedium { index: 1 },
            AaaError::CyclicAlgorithm {
                ops: vec!["a".into(), "b".into()],
            },
            AaaError::InvalidGraph { reason: "x".into() },
            AaaError::Unimplementable { op: "f".into() },
            AaaError::NoRoute {
                from: "p0".into(),
                to: "p1".into(),
            },
            AaaError::InvalidSchedule {
                reason: "overlap".into(),
            },
            AaaError::CommConflict {
                medium: "bus".into(),
                reason: "overlap".into(),
            },
            AaaError::ParseSdx {
                line: 3,
                reason: "bad token".into(),
            },
            AaaError::InvalidTiming {
                reason: "negative".into(),
                value: TimeNs::from_nanos(-1),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AaaError>();
    }
}
