//! Content-addressed caching of adequation results.
//!
//! A scenario sweep re-runs the lifecycle hundreds of times, but many
//! scenarios perturb only the plant, the disturbance seed or the sampling
//! period — inputs the list scheduler never sees. The schedule they need
//! is exactly the one already computed for the same (algorithm graph,
//! architecture, WCET table, policy) quadruple. [`ScheduleCache`] keys
//! schedules by a structural digest of that quadruple, so such scenarios
//! skip the scheduler entirely; [`adequation`] is deterministic, so a
//! cache hit returns a schedule byte-identical to a fresh run.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::adequation::{adequation, AdequationOptions, MappingPolicy};
use crate::algorithm::AlgorithmGraph;
use crate::architecture::{ArchitectureGraph, MediumKind};
use crate::schedule::Schedule;
use crate::timing::TimingDb;
use crate::AaaError;

/// FNV-1a, 64 bit — a stable, dependency-free content hash. `std`'s
/// `DefaultHasher` is deliberately unspecified across releases; the
/// digests built on this hasher must be reproducible so cache statistics
/// (and any persisted keys) mean the same thing on every toolchain.
///
/// Public so other content-addressed memo tables (e.g. the ideal-run
/// memo in `ecl-core`) key on the exact same hash family as
/// [`schedule_digest`].
#[derive(Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Mixes a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes an `i64` (little-endian) into the digest.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes an `f64` by its exact bit pattern: distinct bit patterns
    /// (including `-0.0` vs `0.0`) digest differently, which is what a
    /// byte-determinism cache key needs.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mixes a length-prefixed string into the digest.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Structural digest of everything [`adequation`] reads: the algorithm
/// graph (ops, kinds, conditions, edges), the architecture (processors,
/// media, transfer tariffs), the WCET table (defaults, overrides,
/// interdictions) and the mapping policy. Two inputs with equal digests
/// produce byte-identical schedules; scenario perturbations that leave
/// all four untouched (plant, period, disturbance) hash identically.
pub fn schedule_digest(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
    options: AdequationOptions,
) -> u64 {
    let mut h = Fnv1a::new();

    h.write_u64(alg.len() as u64);
    for op in alg.ops() {
        h.write_str(alg.name(op));
        h.write_u64(match alg.kind(op) {
            crate::OpKind::Sensor => 0,
            crate::OpKind::Function => 1,
            crate::OpKind::Actuator => 2,
        });
        match alg.condition(op) {
            None => h.write_u64(u64::MAX),
            Some(c) => {
                h.write_u64(c.variable.index() as u64);
                h.write_u64(c.branch as u64);
            }
        }
    }
    for e in alg.edges() {
        h.write_u64(e.src.index() as u64);
        h.write_u64(e.dst.index() as u64);
        h.write_u64(u64::from(e.data_units));
    }

    h.write_u64(arch.num_processors() as u64);
    for p in arch.processors() {
        h.write_str(arch.proc_name(p));
        h.write_str(arch.proc_kind(p));
    }
    // Tariff sample points: every distinct edge volume in the algorithm
    // graph, plus 0 and 1 so media still separate on an edgeless graph.
    // Sampling only {0, 1} (latency + first difference) is sound for an
    // affine tariff but aliases non-affine media — e.g. two framed buses
    // that agree on sub-frame transfers and diverge exactly at the
    // volumes the scheduler actually prices. The scheduler only ever
    // evaluates `transfer_time` at edge volumes, so media equal at every
    // sample point produce byte-identical schedules.
    let mut volumes: Vec<u32> = alg.edges().iter().map(|e| e.data_units).collect();
    volumes.push(0);
    volumes.push(1);
    volumes.sort_unstable();
    volumes.dedup();

    h.write_u64(arch.num_media() as u64);
    for m in arch.media() {
        h.write_str(arch.medium_name(m));
        h.write_u64(match arch.medium_kind(m) {
            MediumKind::Bus => 0,
            MediumKind::PointToPoint => 1,
        });
        for &p in arch.medium_procs(m) {
            h.write_u64(p.index() as u64);
        }
        for &u in &volumes {
            h.write_u64(u64::from(u));
            h.write_i64(arch.transfer_time(m, u).as_nanos());
        }
    }

    // TimingDb iterates in HashMap order; sort for a canonical digest.
    let mut defaults: Vec<_> = db.iter_defaults().collect();
    defaults.sort_by_key(|&(op, _)| op);
    for (op, t) in defaults {
        h.write_u64(op.index() as u64);
        h.write_i64(t.as_nanos());
    }
    h.write_u64(u64::MAX); // section separator
    let mut specific: Vec<_> = db.iter_specific().collect();
    specific.sort_by_key(|&(op, p, _)| (op, p));
    for (op, p, t) in specific {
        h.write_u64(op.index() as u64);
        h.write_u64(p.index() as u64);
        h.write_i64(t.as_nanos());
    }
    h.write_u64(u64::MAX);
    let mut forbidden: Vec<_> = db.iter_forbidden().collect();
    forbidden.sort();
    for (op, p) in forbidden {
        h.write_u64(op.index() as u64);
        h.write_u64(p.index() as u64);
    }

    match options.policy {
        MappingPolicy::SchedulePressure => h.write_u64(0),
        MappingPolicy::EarliestFinish => h.write_u64(1),
        MappingPolicy::Random { seed } => {
            h.write_u64(2);
            h.write_u64(seed);
        }
    }
    h.0
}

/// A cached schedule plus the number of times it was looked up.
#[derive(Debug)]
struct CacheSlot {
    schedule: Arc<Schedule>,
    lookups: u64,
}

/// Map plus the count of lookups that *observed* a local miss (and so
/// ran the scheduler). Exceeding the number of distinct digests means
/// workers raced to compute the same key and the losers' results were
/// discarded — wasted work that is scheduling-dependent, so it feeds
/// profiler sidecars only, never deterministic artifacts.
#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<u64, CacheSlot>,
    local_misses: u64,
}

/// A thread-safe memo table from [`schedule_digest`] keys to schedules.
///
/// Shared by the sweep workers via `Arc`; the lock is held only around
/// the map lookup/insert, never across the scheduler itself, so a miss
/// on one worker does not serialize the others (two workers may race to
/// compute the same key — both produce the identical deterministic
/// schedule, and the second insert is a no-op).
///
/// The [`hits`](ScheduleCache::hits)/[`misses`](ScheduleCache::misses)
/// counters are *derived from per-digest lookup counts* rather than
/// incremented per observation: `misses` is the number of distinct
/// digests ever looked up and `hits` is every lookup beyond the first of
/// its digest. Under the race above, a per-observation counter would
/// depend on which worker won (worker-count-dependent bytes in sweep
/// summaries); the derived form depends only on the multiset of digests
/// looked up, so it is identical for any worker count and claim order.
/// Which worker *observed* a hit is still reported per lookup by
/// [`get_or_compute_traced`](ScheduleCache::get_or_compute_traced) — that
/// observation belongs in wall-clock profiler sidecars, never in
/// deterministic artifacts.
///
/// # Examples
///
/// ```
/// use ecl_aaa::{AdequationOptions, AlgorithmGraph, ArchitectureGraph, ScheduleCache, TimeNs, TimingDb};
/// # fn main() -> Result<(), ecl_aaa::AaaError> {
/// let mut alg = AlgorithmGraph::new();
/// let s = alg.add_sensor("s");
/// let mut arch = ArchitectureGraph::new();
/// arch.add_processor("ecu", "arm");
/// let mut db = TimingDb::new();
/// db.set_default(s, TimeNs::from_micros(10));
/// let cache = ScheduleCache::new();
/// let a = cache.get_or_compute(&alg, &arch, &db, AdequationOptions::default())?;
/// let b = cache.get_or_compute(&alg, &arch, &db, AdequationOptions::default())?;
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(a.ops(), b.ops());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ScheduleCache {
    state: Mutex<CacheState>,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// The schedule for the given inputs, running [`adequation`] only on
    /// a cache miss.
    ///
    /// # Errors
    ///
    /// Propagates [`adequation`] errors; failures are not cached.
    pub fn get_or_compute(
        &self,
        alg: &AlgorithmGraph,
        arch: &ArchitectureGraph,
        db: &TimingDb,
        options: AdequationOptions,
    ) -> Result<Arc<Schedule>, AaaError> {
        self.get_or_compute_traced(alg, arch, db, options)
            .map(|(schedule, _, _)| schedule)
    }

    /// Like [`get_or_compute`](ScheduleCache::get_or_compute), also
    /// returning the [`schedule_digest`] key and whether *this* lookup
    /// was answered from the cache.
    ///
    /// The hit flag is this caller's local observation: two workers
    /// racing on the same digest both observe a miss, so the flag is
    /// scheduling-dependent and must only feed wall-clock sidecars (the
    /// fleet profiler), never deterministic artifacts — those use the
    /// order-invariant [`hits`](ScheduleCache::hits)/
    /// [`misses`](ScheduleCache::misses) instead.
    ///
    /// # Errors
    ///
    /// Propagates [`adequation`] errors; failures are not cached.
    pub fn get_or_compute_traced(
        &self,
        alg: &AlgorithmGraph,
        arch: &ArchitectureGraph,
        db: &TimingDb,
        options: AdequationOptions,
    ) -> Result<(Arc<Schedule>, u64, bool), AaaError> {
        let key = schedule_digest(alg, arch, db, options);
        if let Some(slot) = self.state.lock().expect("cache lock").map.get_mut(&key) {
            slot.lookups += 1;
            return Ok((Arc::clone(&slot.schedule), key, true));
        }
        // Computed outside the lock: adequation can be the sweep's most
        // expensive non-simulation phase.
        let schedule = Arc::new(adequation(alg, arch, db, options)?);
        let mut state = self.state.lock().expect("cache lock");
        state.local_misses += 1;
        let slot = state.map.entry(key).or_insert_with(|| CacheSlot {
            schedule,
            lookups: 0,
        });
        slot.lookups += 1;
        Ok((Arc::clone(&slot.schedule), key, false))
    }

    /// Number of lookups beyond the first of their digest — every lookup
    /// that a serial run would have answered from the cache. Derived from
    /// per-digest lookup counts, so identical for any worker count.
    pub fn hits(&self) -> u64 {
        self.state
            .lock()
            .expect("cache lock")
            .map
            .values()
            .map(|slot| slot.lookups.saturating_sub(1))
            .sum()
    }

    /// Number of distinct digests ever looked up — the lookups a serial
    /// run would have sent to the scheduler. Derived, order-invariant.
    pub fn misses(&self) -> u64 {
        self.len() as u64
    }

    /// Total lookups across all digests (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.state
            .lock()
            .expect("cache lock")
            .map
            .values()
            .map(|slot| slot.lookups)
            .sum()
    }

    /// Racing double-computes: lookups that observed a local miss (and
    /// ran the scheduler) beyond the first of their digest. The losing
    /// workers' schedules were discarded, so this is pure wasted work.
    /// The value depends on thread interleaving — report it only in
    /// wall-clock profiler sidecars, never in deterministic artifacts.
    pub fn races(&self) -> u64 {
        let state = self.state.lock().expect("cache lock");
        state.local_misses.saturating_sub(state.map.len() as u64)
    }

    /// Number of lookups that actually ran the scheduler in *this*
    /// process — unlike [`misses`](ScheduleCache::misses) it excludes
    /// entries answered from a [`seed`](ScheduleCache::seed)ed (on-disk)
    /// schedule, so a warm-started daemon can assert it recomputed
    /// nothing. Includes racing double-computes, so it is
    /// scheduling-dependent and belongs in sidecars only (its zero/
    /// non-zero distinction is deterministic for serial executors).
    pub fn computes(&self) -> u64 {
        self.state.lock().expect("cache lock").local_misses
    }

    /// Inserts a schedule computed by an earlier process under its
    /// [`schedule_digest`] key — the warm-start path of the on-disk
    /// cache layer. Returns `false` (and keeps the resident entry) when
    /// the digest is already cached.
    ///
    /// Seeding does not count as a lookup or a compute: a later lookup
    /// of the digest counts toward [`misses`](ScheduleCache::misses)
    /// exactly as if a prior process had paid the first-of-its-digest
    /// compute, while [`computes`](ScheduleCache::computes) stays at
    /// zero for seeded keys.
    pub fn seed(&self, digest: u64, schedule: Schedule) -> bool {
        let mut state = self.state.lock().expect("cache lock");
        match state.map.entry(digest) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(CacheSlot {
                    schedule: Arc::new(schedule),
                    lookups: 0,
                });
                true
            }
        }
    }

    /// Every cached `(digest, schedule)` pair, sorted by digest — the
    /// write-back path of the on-disk cache layer. Deterministic
    /// ordering, so persisting a snapshot is reproducible.
    pub fn snapshot(&self) -> Vec<(u64, Arc<Schedule>)> {
        let state = self.state.lock().expect("cache lock");
        let mut out: Vec<_> = state
            .map
            .iter()
            .map(|(&digest, slot)| (digest, Arc::clone(&slot.schedule)))
            .collect();
        out.sort_by_key(|&(digest, _)| digest);
        out
    }

    /// Number of distinct schedules currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock").map.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MappingPolicy, TimeNs};

    fn setup() -> (AlgorithmGraph, ArchitectureGraph, TimingDb) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f = alg.add_function("f");
        let a = alg.add_actuator("a");
        alg.add_edge(s, f, 1).unwrap();
        alg.add_edge(f, a, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus(
            "bus",
            &[p0, p1],
            TimeNs::from_micros(5),
            TimeNs::from_micros(1),
        )
        .unwrap();
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, TimeNs::from_micros(100));
        }
        (alg, arch, db)
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let (alg, arch, db) = setup();
        let opts = AdequationOptions::default();
        let d1 = schedule_digest(&alg, &arch, &db, opts);
        let d2 = schedule_digest(&alg, &arch, &db, opts);
        assert_eq!(d1, d2);

        // A WCET change must change the digest.
        let mut db2 = db.clone();
        db2.set_default(crate::OpId(1), TimeNs::from_micros(101));
        assert_ne!(d1, schedule_digest(&alg, &arch, &db2, opts));

        // A policy change must change the digest.
        let rnd = AdequationOptions {
            policy: MappingPolicy::Random { seed: 1 },
        };
        assert_ne!(d1, schedule_digest(&alg, &arch, &db, rnd));
        let rnd2 = AdequationOptions {
            policy: MappingPolicy::Random { seed: 2 },
        };
        assert_ne!(
            schedule_digest(&alg, &arch, &db, rnd),
            schedule_digest(&alg, &arch, &db, rnd2)
        );

        // An architecture change must change the digest.
        let mut arch2 = ArchitectureGraph::new();
        let p0 = arch2.add_processor("p0", "arm");
        let p1 = arch2.add_processor("p1", "arm");
        arch2
            .add_bus(
                "bus",
                &[p0, p1],
                TimeNs::from_micros(6),
                TimeNs::from_micros(1),
            )
            .unwrap();
        assert_ne!(d1, schedule_digest(&alg, &arch2, &db, opts));
    }

    /// Exhaustive digest sensitivity: flipping any single input the
    /// scheduler reads — every `AdequationOptions` field, every WCET-table
    /// entry (defaults, overrides, interdictions), every architecture
    /// tariff and every algorithm attribute — must change the digest.
    /// All mutated digests are also checked pairwise distinct, so no two
    /// flips alias each other.
    #[test]
    fn digest_flips_on_every_input_field() {
        // Baseline with every digest section populated: per-op defaults,
        // one specific override, one interdiction.
        let build = || {
            let (alg, arch, mut db) = setup();
            let ops: Vec<_> = alg.ops().collect();
            let procs: Vec<_> = arch.processors().collect();
            db.set(ops[1], procs[1], TimeNs::from_micros(90));
            db.forbid(ops[0], procs[1]);
            (alg, arch, db)
        };
        let (alg, arch, db) = build();
        let ops: Vec<_> = alg.ops().collect();
        let procs: Vec<_> = arch.processors().collect();
        let opts = AdequationOptions::default();
        let mut digests = vec![("baseline", schedule_digest(&alg, &arch, &db, opts))];
        let mut check = |label: &'static str, d: u64| {
            for (prev, pd) in &digests {
                assert_ne!(*pd, d, "digest of '{label}' collides with '{prev}'");
            }
            digests.push((label, d));
        };

        // Every AdequationOptions field: the policy discriminant and, for
        // Random, its seed.
        for (label, policy) in [
            ("policy EarliestFinish", MappingPolicy::EarliestFinish),
            ("policy Random{0}", MappingPolicy::Random { seed: 0 }),
            ("policy Random{1}", MappingPolicy::Random { seed: 1 }),
        ] {
            check(
                label,
                schedule_digest(&alg, &arch, &db, AdequationOptions { policy }),
            );
        }

        // Every default WCET entry, bumped by 1 ns, one op at a time.
        let default_labels = ["default wcet s", "default wcet f", "default wcet a"];
        for (i, &op) in ops.iter().enumerate() {
            let (alg2, arch2, mut db2) = build();
            db2.set_default(op, TimeNs::from_nanos(100_001));
            check(
                default_labels[i],
                schedule_digest(&alg2, &arch2, &db2, opts),
            );
        }
        // The specific override: value bump, and a brand-new entry.
        {
            let (alg2, arch2, mut db2) = build();
            db2.set(ops[1], procs[1], TimeNs::from_nanos(90_001));
            check(
                "specific wcet value",
                schedule_digest(&alg2, &arch2, &db2, opts),
            );
        }
        {
            let (alg2, arch2, mut db2) = build();
            db2.set(ops[2], procs[0], TimeNs::from_micros(90));
            check(
                "specific wcet new entry",
                schedule_digest(&alg2, &arch2, &db2, opts),
            );
        }
        // The interdiction set.
        {
            let (alg2, arch2, mut db2) = build();
            db2.forbid(ops[2], procs[1]);
            check("forbidden pair", schedule_digest(&alg2, &arch2, &db2, opts));
        }

        // Architecture attributes: processor name/kind, medium tariffs
        // and medium kind.
        let arch_variant = |name: &str, kind: &str, lat: TimeNs, per: TimeNs, link: bool| {
            let mut a = ArchitectureGraph::new();
            let p0 = a.add_processor(name, kind);
            let p1 = a.add_processor("p1", "arm");
            if link {
                a.add_link("bus", p0, p1, lat, per).unwrap();
            } else {
                a.add_bus("bus", &[p0, p1], lat, per).unwrap();
            }
            a
        };
        let us = TimeNs::from_micros;
        for (label, a2) in [
            ("proc name", arch_variant("p0x", "arm", us(5), us(1), false)),
            (
                "proc kind",
                arch_variant("p0", "sparc", us(5), us(1), false),
            ),
            (
                "medium latency",
                arch_variant("p0", "arm", TimeNs::from_nanos(5_001), us(1), false),
            ),
            (
                "medium per-unit",
                arch_variant("p0", "arm", us(5), TimeNs::from_nanos(1_001), false),
            ),
            ("medium kind", arch_variant("p0", "arm", us(5), us(1), true)),
        ] {
            check(label, schedule_digest(&alg, &a2, &db, opts));
        }

        // Algorithm attributes: op name, edge data volume, conditioning.
        {
            let (mut alg2, arch2, db2) = (AlgorithmGraph::new(), arch.clone(), db.clone());
            let s = alg2.add_sensor("s2");
            let f = alg2.add_function("f");
            let a = alg2.add_actuator("a");
            alg2.add_edge(s, f, 1).unwrap();
            alg2.add_edge(f, a, 1).unwrap();
            check("op name", schedule_digest(&alg2, &arch2, &db2, opts));
        }
        {
            let (mut alg2, arch2, db2) = (AlgorithmGraph::new(), arch.clone(), db.clone());
            let s = alg2.add_sensor("s");
            let f = alg2.add_function("f");
            let a = alg2.add_actuator("a");
            alg2.add_edge(s, f, 2).unwrap();
            alg2.add_edge(f, a, 1).unwrap();
            check(
                "edge data units",
                schedule_digest(&alg2, &arch2, &db2, opts),
            );
        }
        {
            let (mut alg2, arch2, db2) = build();
            let ops2: Vec<_> = alg2.ops().collect();
            // `s` is already a data predecessor of `f`, so conditioning
            // adds no edge — the digest change is the condition alone.
            alg2.set_condition(ops2[1], ops2[0], 1).unwrap();
            check("condition", schedule_digest(&alg2, &arch2, &db2, opts));
        }
    }

    /// Regression for the `{0, 1}`-sampling tariff digest: two media
    /// that agree on transfers of 0 and 1 data units but diverge at the
    /// volumes actually present in the algorithm graph must digest
    /// differently — with first-difference sampling they aliased, so a
    /// sweep could serve a schedule priced on the wrong tariff.
    #[test]
    fn digest_separates_media_that_agree_at_zero_and_one_unit() {
        // An edge actually transferring 3 units: the volume at which the
        // two tariffs below diverge.
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let a = alg.add_actuator("a");
        alg.add_edge(s, a, 3).unwrap();
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, TimeNs::from_micros(100));
        }

        let affine = |payload: Option<u32>| {
            let mut arch = ArchitectureGraph::new();
            let p0 = arch.add_processor("p0", "arm");
            let p1 = arch.add_processor("p1", "arm");
            match payload {
                None => arch
                    .add_bus(
                        "bus",
                        &[p0, p1],
                        TimeNs::from_micros(5),
                        TimeNs::from_micros(1),
                    )
                    .unwrap(),
                Some(p) => arch
                    .add_framed_bus(
                        "bus",
                        &[p0, p1],
                        TimeNs::from_micros(5),
                        TimeNs::from_micros(1),
                        p,
                    )
                    .unwrap(),
            };
            arch
        };
        let plain = affine(None);
        let framed = affine(Some(1));
        // The tariffs agree at 0 and 1 units (one frame) ...
        let m = crate::MediumId(0);
        assert_eq!(plain.transfer_time(m, 0), framed.transfer_time(m, 0));
        assert_eq!(plain.transfer_time(m, 1), framed.transfer_time(m, 1));
        // ... and diverge at the 3-unit volume the edge transfers.
        assert_ne!(plain.transfer_time(m, 3), framed.transfer_time(m, 3));
        let opts = AdequationOptions::default();
        assert_ne!(
            schedule_digest(&alg, &plain, &db, opts),
            schedule_digest(&alg, &framed, &db, opts)
        );

        // Media equal at every volume the scheduler can price (the
        // payload covers the largest edge) still hash identically:
        // they are indistinguishable to the scheduler by construction.
        let covered = affine(Some(u32::MAX));
        assert_eq!(
            schedule_digest(&alg, &plain, &db, opts),
            schedule_digest(&alg, &covered, &db, opts)
        );
    }

    #[test]
    fn races_are_zero_without_concurrent_misses() {
        let (alg, arch, db) = setup();
        let cache = ScheduleCache::new();
        let opts = AdequationOptions::default();
        for _ in 0..5 {
            cache.get_or_compute(&alg, &arch, &db, opts).unwrap();
        }
        // Serial lookups can never double-compute.
        assert_eq!(cache.races(), 0);
        assert_eq!((cache.hits(), cache.misses()), (4, 1));
    }

    #[test]
    fn cache_hits_return_identical_schedule() {
        let (alg, arch, db) = setup();
        let cache = ScheduleCache::new();
        assert!(cache.is_empty());
        let opts = AdequationOptions::default();
        let a = cache.get_or_compute(&alg, &arch, &db, opts).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.get_or_compute(&alg, &arch, &db, opts).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b));
        // The cached schedule equals a fresh run.
        let fresh = adequation(&alg, &arch, &db, opts).unwrap();
        assert_eq!(a.ops(), fresh.ops());
        assert_eq!(a.comms(), fresh.comms());
        assert_eq!(cache.len(), 1);

        // A different WCET table is a distinct entry.
        let mut db2 = db.clone();
        db2.set_default(crate::OpId(0), TimeNs::from_micros(50));
        cache.get_or_compute(&alg, &arch, &db2, opts).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cache_is_shareable_across_threads_with_exact_counters() {
        let (alg, arch, db) = setup();
        let cache = Arc::new(ScheduleCache::new());
        let opts = AdequationOptions::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let (alg, arch, db) = (&alg, &arch, &db);
                scope.spawn(move || {
                    for _ in 0..8 {
                        cache.get_or_compute(alg, arch, db, opts).unwrap();
                    }
                });
            }
        });
        // Digest-derived counters are exact even under racing lookups:
        // 32 lookups of one digest are 1 miss + 31 hits, regardless of
        // which thread computed the schedule or how many raced on the
        // initial miss.
        assert_eq!((cache.hits(), cache.misses()), (31, 1));
        assert_eq!(cache.lookups(), 32);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn traced_lookup_reports_digest_and_local_observation() {
        let (alg, arch, db) = setup();
        let cache = ScheduleCache::new();
        let opts = AdequationOptions::default();
        let expected = schedule_digest(&alg, &arch, &db, opts);
        let (a, d1, hit1) = cache.get_or_compute_traced(&alg, &arch, &db, opts).unwrap();
        let (b, d2, hit2) = cache.get_or_compute_traced(&alg, &arch, &db, opts).unwrap();
        assert_eq!((d1, d2), (expected, expected));
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    /// Seeding a cache from a prior process's snapshot answers lookups
    /// without running the scheduler: `computes()` stays zero while the
    /// served schedule is byte-identical to the fresh one.
    #[test]
    fn seeded_cache_serves_without_computing() {
        let (alg, arch, db) = setup();
        let opts = AdequationOptions::default();
        // A first process computes and snapshots.
        let warm = ScheduleCache::new();
        warm.get_or_compute(&alg, &arch, &db, opts).unwrap();
        assert_eq!(warm.computes(), 1);
        let snapshot = warm.snapshot();
        assert_eq!(snapshot.len(), 1);

        // A restarted process seeds from the snapshot (round-tripped
        // through the on-disk byte codec) and never runs the scheduler.
        let cold = ScheduleCache::new();
        for (digest, schedule) in &snapshot {
            let bytes = schedule.to_bytes();
            assert!(cold.seed(*digest, Schedule::from_bytes(&bytes).unwrap()));
            // Re-seeding the same digest is refused.
            assert!(!cold.seed(*digest, Schedule::from_bytes(&bytes).unwrap()));
        }
        let (served, digest, hit) = cold.get_or_compute_traced(&alg, &arch, &db, opts).unwrap();
        assert!(hit, "seeded digest must answer from the cache");
        assert_eq!(digest, snapshot[0].0);
        assert_eq!(cold.computes(), 0);
        let fresh = adequation(&alg, &arch, &db, opts).unwrap();
        assert_eq!(served.ops(), fresh.ops());
        assert_eq!(served.comms(), fresh.comms());
    }

    /// The counters depend only on the multiset of digests looked up,
    /// not on lookup interleaving: replaying the same lookups in reverse
    /// order yields identical hits/misses.
    #[test]
    fn counters_are_order_invariant() {
        let (alg, arch, db) = setup();
        let mut db2 = db.clone();
        db2.set_default(crate::OpId(0), TimeNs::from_micros(50));
        let opts = AdequationOptions::default();
        let run = |tables: &[&TimingDb]| {
            let cache = ScheduleCache::new();
            for t in tables {
                cache.get_or_compute(&alg, &arch, t, opts).unwrap();
            }
            (cache.hits(), cache.misses())
        };
        let forward = run(&[&db, &db, &db2, &db, &db2]);
        let reverse = run(&[&db2, &db, &db2, &db, &db]);
        assert_eq!(forward, (3, 2));
        assert_eq!(forward, reverse);
    }
}
