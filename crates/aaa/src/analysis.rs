//! Schedule analysis: critical path, parallelism profile, speedup, and an
//! ASCII Gantt chart.
//!
//! These are the numbers a designer reads off the SynDEx adequation window
//! before deciding whether the distribution is worth its communications.

use ecl_sim::TimeNs;

use crate::algorithm::AlgorithmGraph;
use crate::architecture::{ArchitectureGraph, ProcId};
use crate::schedule::Schedule;
use crate::timing::TimingDb;
use crate::AaaError;

/// Summary metrics of one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Completion instant of the last activity.
    pub makespan: TimeNs,
    /// Lower bound: the longest WCET chain through the algorithm graph
    /// (communications ignored) — no schedule can beat it.
    pub critical_path: TimeNs,
    /// Sum of all computation WCETs — the single-processor makespan.
    pub sequential_time: TimeNs,
    /// `sequential_time / makespan` (the achieved speedup).
    pub speedup: f64,
    /// `makespan / critical_path` (1.0 = optimal w.r.t. the bound).
    pub efficiency_vs_bound: f64,
    /// Per-processor busy fraction of the makespan.
    pub utilization: Vec<(ProcId, f64)>,
    /// Total time the media carry data.
    pub comm_time: TimeNs,
}

/// Per-operation optimistic lower bounds: entry `op.index()` is the
/// longest chain of minimal WCETs through the algorithm graph that ends
/// with `op` (communications ignored). No schedule can complete `op`
/// earlier than its chain bound.
///
/// This is the single source of the critical-path arithmetic, shared by
/// [`critical_path`] (hence [`report`]) and the static latency-bound
/// derivation in `ecl-verify`, so the two can never drift.
///
/// # Errors
///
/// Propagates cycle detection and unimplementable-operation errors.
pub fn wcet_chain_bounds(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
) -> Result<Vec<TimeNs>, AaaError> {
    let order = alg.topo_order()?;
    let procs: Vec<ProcId> = arch.processors().collect();
    let mut longest = vec![TimeNs::ZERO; alg.len()];
    for &op in &order {
        let own = db.min_wcet(op, procs.iter().copied(), alg.name(op))?;
        let above = alg
            .preds(op)
            .into_iter()
            .map(|p| longest[p.index()])
            .max()
            .unwrap_or(TimeNs::ZERO);
        longest[op.index()] = above + own;
    }
    Ok(longest)
}

/// The optimistic critical path: the longest chain of minimal WCETs.
///
/// # Errors
///
/// Propagates cycle detection and unimplementable-operation errors.
pub fn critical_path(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
) -> Result<TimeNs, AaaError> {
    Ok(wcet_chain_bounds(alg, arch, db)?
        .into_iter()
        .max()
        .unwrap_or(TimeNs::ZERO))
}

/// Builds the full [`ScheduleReport`].
///
/// # Errors
///
/// Propagates [`critical_path`] errors.
pub fn report(
    schedule: &Schedule,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
) -> Result<ScheduleReport, AaaError> {
    let makespan = schedule.makespan();
    let cp = critical_path(alg, arch, db)?;
    let sequential: TimeNs = schedule.ops().iter().map(|s| s.end - s.start).sum();
    let comm_time: TimeNs = schedule.comms().iter().map(|c| c.end - c.start).sum();
    let speedup = if makespan > TimeNs::ZERO {
        sequential.as_nanos() as f64 / makespan.as_nanos() as f64
    } else {
        1.0
    };
    let efficiency = if cp > TimeNs::ZERO {
        makespan.as_nanos() as f64 / cp.as_nanos() as f64
    } else {
        1.0
    };
    Ok(ScheduleReport {
        makespan,
        critical_path: cp,
        sequential_time: sequential,
        speedup,
        efficiency_vs_bound: efficiency,
        utilization: arch
            .processors()
            .map(|p| (p, schedule.utilization(p)))
            .collect(),
        comm_time,
    })
}

/// Renders an ASCII Gantt chart (`width` columns spanning the makespan).
///
/// Each processor and medium gets one row; `#` marks busy time, `.` idle.
pub fn gantt(
    schedule: &Schedule,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    width: usize,
) -> String {
    let _ = alg;
    let makespan = schedule.makespan();
    let width = width.max(10);
    let col = |t: TimeNs| -> usize {
        if makespan <= TimeNs::ZERO {
            return 0;
        }
        ((t.as_nanos() as f64 / makespan.as_nanos() as f64) * width as f64).round() as usize
    };
    let mut out = String::new();
    let label_w = arch
        .processors()
        .map(|p| arch.proc_name(p).len())
        .chain(arch.media().map(|m| arch.medium_name(m).len()))
        .max()
        .unwrap_or(4)
        .max(4);
    for p in arch.processors() {
        let mut row = vec!['.'; width];
        for s in schedule.proc_sequence(p) {
            for cell in row
                .iter_mut()
                .take(col(s.end).min(width))
                .skip(col(s.start))
            {
                *cell = '#';
            }
        }
        out.push_str(&format!(
            "{:<label_w$} |{}|\n",
            arch.proc_name(p),
            row.iter().collect::<String>()
        ));
    }
    for m in arch.media() {
        let mut row = vec!['.'; width];
        for c in schedule.medium_sequence(m) {
            for cell in row
                .iter_mut()
                .take(col(c.end).min(width))
                .skip(col(c.start))
            {
                *cell = '=';
            }
        }
        out.push_str(&format!(
            "{:<label_w$} |{}|\n",
            arch.medium_name(m),
            row.iter().collect::<String>()
        ));
    }
    out.push_str(&format!(
        "{:<label_w$}  0{:>w$}\n",
        "",
        format!("{makespan}"),
        w = width
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adequation::{adequation, AdequationOptions};

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    fn fixture() -> (AlgorithmGraph, ArchitectureGraph, TimingDb, Schedule) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let f1 = alg.add_function("f1");
        let f2 = alg.add_function("f2");
        let a = alg.add_actuator("a");
        alg.add_edge(s, f1, 1).unwrap();
        alg.add_edge(s, f2, 1).unwrap();
        alg.add_edge(f1, a, 1).unwrap();
        alg.add_edge(f2, a, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let p1 = arch.add_processor("p1", "arm");
        arch.add_bus("bus", &[p0, p1], us(1), us(1)).unwrap();
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, us(100));
        }
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        (alg, arch, db, schedule)
    }

    #[test]
    fn critical_path_of_diamond() {
        let (alg, arch, db, _) = fixture();
        // s -> f -> a: 3 * 100us.
        assert_eq!(critical_path(&alg, &arch, &db).unwrap(), us(300));
    }

    #[test]
    fn chain_bounds_agree_with_critical_path() {
        let (alg, arch, db, _) = fixture();
        let chains = wcet_chain_bounds(&alg, &arch, &db).unwrap();
        // s at 100us; f1/f2 at 200us; a at 300us.
        assert_eq!(chains, vec![us(100), us(200), us(200), us(300)]);
        assert_eq!(
            chains.into_iter().max().unwrap(),
            critical_path(&alg, &arch, &db).unwrap()
        );
    }

    #[test]
    fn report_is_consistent() {
        let (alg, arch, db, schedule) = fixture();
        let rep = report(&schedule, &alg, &arch, &db).unwrap();
        assert_eq!(rep.sequential_time, us(400));
        assert!(rep.makespan >= rep.critical_path);
        assert!(rep.speedup >= 1.0 && rep.speedup <= 2.0);
        assert!(rep.efficiency_vs_bound >= 1.0);
        assert_eq!(rep.utilization.len(), 2);
        for (_, u) in &rep.utilization {
            assert!((0.0..=1.0).contains(u));
        }
    }

    #[test]
    fn gantt_shape() {
        let (alg, arch, _, schedule) = fixture();
        let chart = gantt(&schedule, &alg, &arch, 40);
        let lines: Vec<&str> = chart.lines().collect();
        // two processors + one medium + axis
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('#'));
        assert!(lines[0].starts_with("p0"));
        assert!(lines[2].starts_with("bus"));
    }

    #[test]
    fn empty_schedule_report() {
        let alg = AlgorithmGraph::new();
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("p0", "arm");
        let db = TimingDb::new();
        let schedule = Schedule::default();
        let rep = report(&schedule, &alg, &arch, &db).unwrap();
        assert_eq!(rep.makespan, TimeNs::ZERO);
        assert_eq!(rep.speedup, 1.0);
        let chart = gantt(&schedule, &alg, &arch, 20);
        assert!(chart.contains("p0"));
    }
}
