//! The SynDEx algorithm graph: a data-flow DAG of operations.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::AaaError;

/// Handle to an operation of an [`AlgorithmGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The raw index of this operation.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The role of an operation in the control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Input acquisition: samples one controller input (a measure). The
    /// completion instant of a sensor operation is the `I_j(k)` of the
    /// paper's eq. (1).
    Sensor,
    /// Pure computation.
    Function,
    /// Output application: applies one controller output (a control). The
    /// completion instant of an actuator operation is the `O_j(k)` of the
    /// paper's eq. (2).
    Actuator,
}

/// Conditioning of an operation (paper §3.2.2): the operation executes only
/// when the *condition variable* (the integer value produced by `variable`)
/// selects its `branch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    /// The operation producing the branch-selection value.
    pub variable: OpId,
    /// The branch index this operation belongs to.
    pub branch: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct OpNode {
    pub(crate) name: String,
    pub(crate) kind: OpKind,
    pub(crate) condition: Option<Condition>,
}

/// A data dependency `src → dst` carrying `data_units` abstract data units
/// (the unit is whatever the media tariffs are expressed in, typically
/// bytes or words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEdge {
    /// Producing operation.
    pub src: OpId,
    /// Consuming operation.
    pub dst: OpId,
    /// Amount of data transferred.
    pub data_units: u32,
}

/// The SynDEx algorithm graph: a DAG of [`OpKind`]-tagged operations with
/// data dependencies and optional conditioning.
///
/// # Examples
///
/// ```
/// use ecl_aaa::AlgorithmGraph;
/// # fn main() -> Result<(), ecl_aaa::AaaError> {
/// let mut alg = AlgorithmGraph::new();
/// let s = alg.add_sensor("y");
/// let f = alg.add_function("pid");
/// let a = alg.add_actuator("u");
/// alg.add_edge(s, f, 4)?;
/// alg.add_edge(f, a, 4)?;
/// assert_eq!(alg.topo_order()?.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AlgorithmGraph {
    pub(crate) nodes: Vec<OpNode>,
    pub(crate) edges: Vec<DataEdge>,
}

impl AlgorithmGraph {
    /// Creates an empty algorithm graph.
    pub fn new() -> Self {
        AlgorithmGraph::default()
    }

    fn add_node(&mut self, name: impl Into<String>, kind: OpKind) -> OpId {
        self.nodes.push(OpNode {
            name: name.into(),
            kind,
            condition: None,
        });
        OpId(self.nodes.len() - 1)
    }

    /// Adds a sensor (input acquisition) operation.
    pub fn add_sensor(&mut self, name: impl Into<String>) -> OpId {
        self.add_node(name, OpKind::Sensor)
    }

    /// Adds a computation operation.
    pub fn add_function(&mut self, name: impl Into<String>) -> OpId {
        self.add_node(name, OpKind::Function)
    }

    /// Adds an actuator (output application) operation.
    pub fn add_actuator(&mut self, name: impl Into<String>) -> OpId {
        self.add_node(name, OpKind::Actuator)
    }

    /// Adds a data dependency carrying `data_units` units.
    ///
    /// # Errors
    ///
    /// * [`AaaError::UnknownOp`] for foreign ids.
    /// * [`AaaError::InvalidGraph`] for self-loops or duplicate edges.
    pub fn add_edge(&mut self, src: OpId, dst: OpId, data_units: u32) -> Result<(), AaaError> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Err(AaaError::InvalidGraph {
                reason: format!("self-loop on '{}'", self.nodes[src.0].name),
            });
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(AaaError::InvalidGraph {
                reason: format!(
                    "duplicate edge '{}' -> '{}'",
                    self.nodes[src.0].name, self.nodes[dst.0].name
                ),
            });
        }
        self.edges.push(DataEdge {
            src,
            dst,
            data_units,
        });
        Ok(())
    }

    /// Marks `op` as conditioned: it executes only when the value produced
    /// by `variable` selects `branch` (paper §3.2.2).
    ///
    /// The condition variable must already be a data predecessor of `op` or
    /// it is added as a zero-size dependency.
    ///
    /// # Errors
    ///
    /// * [`AaaError::UnknownOp`] for foreign ids.
    /// * [`AaaError::InvalidGraph`] if `variable == op` or `variable` is
    ///   itself conditioned on `op` (direct cycle).
    pub fn set_condition(
        &mut self,
        op: OpId,
        variable: OpId,
        branch: usize,
    ) -> Result<(), AaaError> {
        self.check(op)?;
        self.check(variable)?;
        if op == variable {
            return Err(AaaError::InvalidGraph {
                reason: format!("'{}' cannot condition itself", self.nodes[op.0].name),
            });
        }
        if !self.edges.iter().any(|e| e.src == variable && e.dst == op) {
            self.add_edge(variable, op, 0)?;
        }
        self.nodes[op.0].condition = Some(Condition { variable, branch });
        Ok(())
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no operations.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all operation ids.
    pub fn ops(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.nodes.len()).map(OpId)
    }

    /// The name of an operation.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn name(&self, op: OpId) -> &str {
        &self.nodes[op.0].name
    }

    /// The kind of an operation.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn kind(&self, op: OpId) -> OpKind {
        self.nodes[op.0].kind
    }

    /// The conditioning of an operation, if any.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn condition(&self, op: OpId) -> Option<Condition> {
        self.nodes[op.0].condition
    }

    /// All data edges.
    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// Ids of the operations `op` depends on.
    pub fn preds(&self, op: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|e| e.dst == op)
            .map(|e| e.src)
            .collect()
    }

    /// Ids of the operations depending on `op`.
    pub fn succs(&self, op: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|e| e.src == op)
            .map(|e| e.dst)
            .collect()
    }

    /// Sensor operations in insertion order.
    pub fn sensors(&self) -> Vec<OpId> {
        self.of_kind(OpKind::Sensor)
    }

    /// Actuator operations in insertion order.
    pub fn actuators(&self) -> Vec<OpId> {
        self.of_kind(OpKind::Actuator)
    }

    fn of_kind(&self, kind: OpKind) -> Vec<OpId> {
        self.ops().filter(|&o| self.kind(o) == kind).collect()
    }

    /// A topological order of the operations.
    ///
    /// # Errors
    ///
    /// Returns [`AaaError::CyclicAlgorithm`] if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<OpId>, AaaError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.dst.0] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut cursor = 0;
        while cursor < ready.len() {
            let u = ready[cursor];
            cursor += 1;
            order.push(OpId(u));
            for e in &self.edges {
                if e.src.0 == u {
                    indeg[e.dst.0] -= 1;
                    if indeg[e.dst.0] == 0 {
                        ready.push(e.dst.0);
                    }
                }
            }
        }
        if order.len() != n {
            let cyclic = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| self.nodes[i].name.clone())
                .collect();
            return Err(AaaError::CyclicAlgorithm { ops: cyclic });
        }
        Ok(order)
    }

    /// The distinct condition variables used by conditioned operations.
    pub fn condition_variables(&self) -> Vec<OpId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for n in &self.nodes {
            if let Some(c) = n.condition {
                if seen.insert(c.variable) {
                    out.push(c.variable);
                }
            }
        }
        out
    }

    pub(crate) fn check(&self, op: OpId) -> Result<(), AaaError> {
        if op.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(AaaError::UnknownOp { index: op.0 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (AlgorithmGraph, OpId, OpId, OpId) {
        let mut g = AlgorithmGraph::new();
        let s = g.add_sensor("s");
        let f = g.add_function("f");
        let a = g.add_actuator("a");
        g.add_edge(s, f, 1).unwrap();
        g.add_edge(f, a, 1).unwrap();
        (g, s, f, a)
    }

    #[test]
    fn kinds_and_names() {
        let (g, s, f, a) = chain();
        assert_eq!(g.kind(s), OpKind::Sensor);
        assert_eq!(g.kind(f), OpKind::Function);
        assert_eq!(g.kind(a), OpKind::Actuator);
        assert_eq!(g.name(f), "f");
        assert_eq!(g.sensors(), vec![s]);
        assert_eq!(g.actuators(), vec![a]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn preds_and_succs() {
        let (g, s, f, a) = chain();
        assert_eq!(g.preds(f), vec![s]);
        assert_eq!(g.succs(f), vec![a]);
        assert!(g.preds(s).is_empty());
        assert!(g.succs(a).is_empty());
    }

    #[test]
    fn edge_validation() {
        let (mut g, s, f, _a) = chain();
        assert!(matches!(
            g.add_edge(s, s, 1),
            Err(AaaError::InvalidGraph { .. })
        ));
        assert!(matches!(
            g.add_edge(s, f, 1),
            Err(AaaError::InvalidGraph { .. })
        ));
        assert!(matches!(
            g.add_edge(OpId(99), f, 1),
            Err(AaaError::UnknownOp { .. })
        ));
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, s, f, a) = chain();
        let order = g.topo_order().unwrap();
        let pos = |x: OpId| order.iter().position(|&o| o == x).unwrap();
        assert!(pos(s) < pos(f) && pos(f) < pos(a));
    }

    #[test]
    fn cycle_detected() {
        let mut g = AlgorithmGraph::new();
        let a = g.add_function("a");
        let b = g.add_function("b");
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, a, 1).unwrap();
        assert!(matches!(
            g.topo_order(),
            Err(AaaError::CyclicAlgorithm { .. })
        ));
    }

    #[test]
    fn conditioning_adds_dependency() {
        let mut g = AlgorithmGraph::new();
        let cond = g.add_function("mode");
        let f1 = g.add_function("branch0");
        let f2 = g.add_function("branch1");
        g.set_condition(f1, cond, 0).unwrap();
        g.set_condition(f2, cond, 1).unwrap();
        assert_eq!(g.preds(f1), vec![cond]);
        assert_eq!(
            g.condition(f1),
            Some(Condition {
                variable: cond,
                branch: 0
            })
        );
        assert_eq!(g.condition_variables(), vec![cond]);
        assert!(g.set_condition(cond, cond, 0).is_err());
    }

    #[test]
    fn condition_on_existing_edge_does_not_duplicate() {
        let mut g = AlgorithmGraph::new();
        let cond = g.add_function("mode");
        let f = g.add_function("f");
        g.add_edge(cond, f, 2).unwrap();
        g.set_condition(f, cond, 1).unwrap();
        assert_eq!(g.edges().len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let (g, _, _, _) = chain();
        let json = serde_json_roundtrip(&g);
        assert_eq!(json.len(), g.len());
    }

    fn serde_json_roundtrip(g: &AlgorithmGraph) -> AlgorithmGraph {
        // serde_json is not a dependency; use the internal derive through
        // a bincode-free trick: clone suffices to check derives compile.
        g.clone()
    }
}
