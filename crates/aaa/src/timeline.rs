//! Schedule-timeline exporters: ASCII Gantt charts, CSV rows and
//! telemetry trace events.
//!
//! The adequation's static [`Schedule`] is a set of `[start, end)` slots
//! on processors and media; this module renders those slots on per-track
//! timelines so a designer can *see* where one period's time goes —
//! before any code runs on a target. Three formats share the same row
//! extraction, so they always cover the same slots:
//!
//! * [`gantt_text`] — an aligned ASCII chart, one row per processor/bus;
//! * [`gantt_csv`] — `track,kind,name,start_ns,end_ns,duration_ns` rows;
//! * [`trace_events`] — [`ecl_telemetry::Event::Slice`]s replicated over
//!   `periods` schedule periods, ready for the Chrome trace exporter
//!   ([`ecl_telemetry::trace::chrome_trace`]).

use ecl_sim::TimeNs;
use ecl_telemetry::Event;

use crate::algorithm::AlgorithmGraph;
use crate::architecture::ArchitectureGraph;
use crate::schedule::Schedule;

/// One rendered timeline slot (a computation or a communication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineRow {
    /// Track the slot occupies: `proc:<name>` or `bus:<name>`.
    pub track: String,
    /// `"op"` for computations, `"comm"` for transfers.
    pub kind: &'static str,
    /// Operation name, or `src->dst` transfer description.
    pub name: String,
    /// Slot start.
    pub start: TimeNs,
    /// Slot end.
    pub end: TimeNs,
}

/// Extracts every computation and communication slot as a [`TimelineRow`],
/// grouped by track (processors first, then media), each track in start
/// order. All exporters below are defined over these rows, so they cover
/// the schedule identically.
pub fn timeline_rows(
    schedule: &Schedule,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
) -> Vec<TimelineRow> {
    let mut rows = Vec::with_capacity(schedule.ops().len() + schedule.comms().len());
    for p in arch.processors() {
        for slot in schedule.proc_sequence(p) {
            rows.push(TimelineRow {
                track: format!("proc:{}", arch.proc_name(p)),
                kind: "op",
                name: alg.name(slot.op).to_string(),
                start: slot.start,
                end: slot.end,
            });
        }
    }
    for m in arch.media() {
        for c in schedule.medium_sequence(m) {
            rows.push(TimelineRow {
                track: format!("bus:{}", arch.medium_name(m)),
                kind: "comm",
                name: format!(
                    "{}:{}->{}",
                    alg.name(c.src_op),
                    arch.proc_name(c.from),
                    arch.proc_name(c.to)
                ),
                start: c.start,
                end: c.end,
            });
        }
    }
    rows
}

/// Renders the schedule as an aligned ASCII Gantt chart.
///
/// One row per processor and bus; occupied spans are drawn with `#`
/// (computations) or `=` (transfers) over a `width`-column scale of the
/// makespan, and every slot is listed under its track with exact
/// instants. An empty schedule renders a single note line.
pub fn gantt_text(schedule: &Schedule, alg: &AlgorithmGraph, arch: &ArchitectureGraph) -> String {
    const WIDTH: usize = 60;
    let rows = timeline_rows(schedule, alg, arch);
    let makespan = schedule.makespan();
    if rows.is_empty() || makespan <= TimeNs::ZERO {
        return "gantt: empty schedule\n".to_string();
    }
    let span = makespan.as_nanos();
    // Column of an instant, clamped so `end == makespan` stays in-chart.
    let col = |t: TimeNs| -> usize {
        ((t.as_nanos() as u128 * WIDTH as u128 / span as u128) as usize).min(WIDTH - 1)
    };
    let label_w = rows.iter().map(|r| r.track.len()).max().unwrap_or(0);
    let mut s = format!(
        "gantt over [0 .. {makespan}], {WIDTH} cols, 1 col = {} ns\n",
        (span + WIDTH as i64 - 1) / WIDTH as i64
    );
    let track_of = |track: &str, out: &mut String, rows: &[TimelineRow]| {
        let mine: Vec<&TimelineRow> = rows.iter().filter(|r| r.track == track).collect();
        let mut bar = vec![b'.'; WIDTH];
        for r in &mine {
            let fill = if r.kind == "op" { b'#' } else { b'=' };
            for c in &mut bar[col(r.start)..=col(r.end.max(r.start))] {
                *c = fill;
            }
        }
        out.push_str(&format!(
            "{:<label_w$} |{}|\n",
            track,
            String::from_utf8(bar).expect("ascii")
        ));
        for r in mine {
            out.push_str(&format!(
                "{:label_w$}   [{} .. {}] {}\n",
                "", r.start, r.end, r.name
            ));
        }
    };
    let mut seen = Vec::new();
    for r in &rows {
        if !seen.contains(&r.track) {
            seen.push(r.track.clone());
            track_of(&r.track, &mut s, &rows);
        }
    }
    s
}

/// Quotes a CSV field per RFC 4180 when (and only when) it needs it:
/// fields containing a comma, a double quote or a line break are wrapped
/// in double quotes with inner quotes doubled; every other field is
/// emitted verbatim, keeping historical exports byte-identical.
fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders the schedule as CSV with header
/// `track,kind,name,start_ns,end_ns,duration_ns` — one row per
/// computation and per communication. Operation and track names
/// containing CSV metacharacters (commas, quotes, line breaks) are
/// RFC 4180-quoted; plain names are emitted verbatim.
pub fn gantt_csv(schedule: &Schedule, alg: &AlgorithmGraph, arch: &ArchitectureGraph) -> String {
    let mut s = String::from("track,kind,name,start_ns,end_ns,duration_ns\n");
    for r in timeline_rows(schedule, alg, arch) {
        s.push_str(&format!(
            "{},{},{},{},{},{}\n",
            csv_field(&r.track),
            r.kind,
            csv_field(&r.name),
            r.start.as_nanos(),
            r.end.as_nanos(),
            (r.end - r.start).as_nanos()
        ));
    }
    s
}

/// Emits the schedule as telemetry [`Event::Slice`]s, replicated over
/// `periods` consecutive periods of length `period` (the co-simulated
/// hyper-horizon), plus one per-period `Instant` marking each period
/// origin on the `schedule` track.
///
/// The events carry *simulated* time, so the stream is deterministic and
/// feeds straight into [`ecl_telemetry::trace::chrome_trace`].
pub fn trace_events(
    schedule: &Schedule,
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    period: TimeNs,
    periods: u32,
) -> Vec<Event> {
    let rows = timeline_rows(schedule, alg, arch);
    let mut events = Vec::with_capacity(periods as usize * (rows.len() + 1));
    for k in 0..periods {
        let origin = period * i64::from(k);
        events.push(Event::Instant {
            track: "schedule".to_string(),
            name: format!("period {k}"),
            at_ns: origin.as_nanos(),
        });
        for r in &rows {
            events.push(Event::Slice {
                track: r.track.clone(),
                name: r.name.clone(),
                start_ns: (origin + r.start).as_nanos(),
                end_ns: (origin + r.end).as_nanos(),
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::{MediumId, ProcId};
    use crate::schedule::{ScheduledComm, ScheduledOp};
    use crate::OpId;

    fn toy() -> (AlgorithmGraph, ArchitectureGraph, Schedule) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("sen");
        let f = alg.add_function("law");
        let a = alg.add_actuator("act");
        alg.add_edge(s, f, 1).unwrap();
        alg.add_edge(f, a, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus(
            "can",
            &[p0, p1],
            TimeNs::from_micros(10),
            TimeNs::from_micros(1),
        )
        .unwrap();
        let ms = TimeNs::from_millis;
        let schedule = Schedule::from_parts(
            vec![
                ScheduledOp {
                    op: OpId(0),
                    proc: ProcId(0),
                    start: ms(0),
                    end: ms(1),
                },
                ScheduledOp {
                    op: OpId(1),
                    proc: ProcId(1),
                    start: ms(2),
                    end: ms(3),
                },
                ScheduledOp {
                    op: OpId(2),
                    proc: ProcId(0),
                    start: ms(4),
                    end: ms(5),
                },
            ],
            vec![
                ScheduledComm {
                    src_op: OpId(0),
                    from: ProcId(0),
                    to: ProcId(1),
                    medium: MediumId(0),
                    start: ms(1),
                    end: ms(2),
                    data_units: 1,
                },
                ScheduledComm {
                    src_op: OpId(1),
                    from: ProcId(1),
                    to: ProcId(0),
                    medium: MediumId(0),
                    start: ms(3),
                    end: ms(4),
                    data_units: 1,
                },
            ],
        );
        (alg, arch, schedule)
    }

    #[test]
    fn rows_cover_every_op_and_comm() {
        let (alg, arch, sch) = toy();
        let rows = timeline_rows(&sch, &alg, &arch);
        assert_eq!(rows.len(), sch.ops().len() + sch.comms().len());
        for name in ["sen", "law", "act"] {
            assert!(rows.iter().any(|r| r.name == name), "missing {name}");
        }
        assert!(rows.iter().any(|r| r.name == "sen:ecu0->ecu1"));
        assert!(rows
            .iter()
            .any(|r| r.track == "bus:can" && r.kind == "comm"));
    }

    #[test]
    fn gantt_text_draws_all_tracks() {
        let (alg, arch, sch) = toy();
        let text = gantt_text(&sch, &alg, &arch);
        for needle in [
            "proc:ecu0",
            "proc:ecu1",
            "bus:can",
            "sen",
            "law",
            "act",
            "#",
            "=",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert_eq!(
            gantt_text(&Schedule::default(), &alg, &arch),
            "gantt: empty schedule\n"
        );
    }

    #[test]
    fn gantt_csv_one_row_per_slot() {
        let (alg, arch, sch) = toy();
        let csv = gantt_csv(&sch, &alg, &arch);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "track,kind,name,start_ns,end_ns,duration_ns"
        );
        let data: Vec<&str> = lines.collect();
        assert_eq!(data.len(), sch.ops().len() + sch.comms().len());
        assert!(data.contains(&"proc:ecu0,op,sen,0,1000000,1000000"));
        assert!(data
            .iter()
            .any(|l| l.starts_with("bus:can,comm,law:ecu1->ecu0,")));
    }

    #[test]
    fn gantt_csv_escapes_metacharacter_names() {
        // Names chosen by users flow straight into CSV cells; commas,
        // quotes and newlines must not shift columns or break rows.
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("sen,v2");
        let f = alg.add_function("law \"beta\"");
        alg.add_edge(s, f, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu,main", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus(
            "can",
            &[p0, p1],
            TimeNs::from_micros(10),
            TimeNs::from_micros(1),
        )
        .unwrap();
        let ms = TimeNs::from_millis;
        let schedule = Schedule::from_parts(
            vec![
                ScheduledOp {
                    op: OpId(0),
                    proc: ProcId(0),
                    start: ms(0),
                    end: ms(1),
                },
                ScheduledOp {
                    op: OpId(1),
                    proc: ProcId(1),
                    start: ms(2),
                    end: ms(3),
                },
            ],
            vec![ScheduledComm {
                src_op: OpId(0),
                from: ProcId(0),
                to: ProcId(1),
                medium: MediumId(0),
                start: ms(1),
                end: ms(2),
                data_units: 1,
            }],
        );
        let csv = gantt_csv(&schedule, &alg, &arch);
        let lines: Vec<&str> = csv.lines().collect();
        // Comma-bearing track and name are quoted; the quote-bearing name
        // has its inner quotes doubled; the transfer label inherits both.
        assert!(lines.contains(&"\"proc:ecu,main\",op,\"sen,v2\",0,1000000,1000000"));
        assert!(lines.contains(&"proc:ecu1,op,\"law \"\"beta\"\"\",2000000,3000000,1000000"));
        assert!(lines.contains(&"bus:can,comm,\"sen,v2:ecu,main->ecu1\",1000000,2000000,1000000"));
        // Every data row still splits into exactly 6 RFC 4180 fields.
        for line in &lines[1..] {
            let mut fields = 1;
            let mut in_quotes = false;
            for c in line.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => fields += 1,
                    _ => {}
                }
            }
            assert!(!in_quotes, "unbalanced quotes in {line}");
            assert_eq!(fields, 6, "wrong field count in {line}");
        }
        // Plain names stay unquoted and byte-identical to the historical
        // format.
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a->b"), "a->b");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_field("a\nb"), "\"a\nb\"");
    }

    #[test]
    fn trace_events_replicate_per_period() {
        let (alg, arch, sch) = toy();
        let period = TimeNs::from_millis(10);
        let events = trace_events(&sch, &alg, &arch, period, 3);
        let n_rows = sch.ops().len() + sch.comms().len();
        assert_eq!(events.len(), 3 * (n_rows + 1));
        // Second period's sensor slice is offset by one period.
        let slices: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Slice { name, start_ns, .. } if name == "sen" => Some(*start_ns),
                _ => None,
            })
            .collect();
        assert_eq!(slices, vec![0, 10_000_000, 20_000_000]);
        // Period origins are marked.
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Instant { track, at_ns: 20_000_000, .. } if track == "schedule"
        )));
    }
}
