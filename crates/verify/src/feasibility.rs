//! Schedule feasibility (pass a): coverage, slot sanity, per-processor
//! and per-medium non-overlap, causality, and WCET consistency between
//! the timing table and the slot durations.

use ecl_aaa::{AlgorithmGraph, ArchitectureGraph, Schedule, TimingDb};

use crate::diag::{Anchor, Diagnostic, Severity};

fn op_anchor(alg: &AlgorithmGraph, op: ecl_aaa::OpId) -> Anchor {
    Anchor::Op {
        index: op.index(),
        name: alg.name(op).to_string(),
    }
}

/// Runs the feasibility pass over one schedule.
pub fn verify_schedule(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
    schedule: &Schedule,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |code: &'static str, severity: Severity, anchor: Anchor, message: String| {
        out.push(Diagnostic {
            code,
            severity,
            anchor,
            message,
        })
    };

    // EV001: coverage and slot sanity.
    for op in alg.ops() {
        let count = schedule.ops().iter().filter(|s| s.op == op).count();
        if count != 1 {
            push(
                "EV001",
                Severity::Error,
                op_anchor(alg, op),
                format!("operation scheduled {count} times (must be exactly once)"),
            );
        }
    }
    for s in schedule.ops() {
        if s.end < s.start {
            push(
                "EV001",
                Severity::Error,
                op_anchor(alg, s.op),
                format!("slot ends ({}) before it starts ({})", s.end, s.start),
            );
        }
        if s.proc.index() >= arch.num_processors() {
            push(
                "EV001",
                Severity::Error,
                op_anchor(alg, s.op),
                format!("slot placed on unknown processor {}", s.proc),
            );
        }
    }

    // EV002: per-processor non-overlap.
    for p in arch.processors() {
        let mut seq = schedule.proc_sequence(p);
        seq.sort_by_key(|s| s.start);
        for w in seq.windows(2) {
            if w[1].start < w[0].end {
                push(
                    "EV002",
                    Severity::Error,
                    Anchor::Proc {
                        index: p.index(),
                        name: arch.proc_name(p).to_string(),
                    },
                    format!(
                        "slots of '{}' and '{}' overlap ([{} .. {}] vs [{} .. {}])",
                        alg.name(w[0].op),
                        alg.name(w[1].op),
                        w[0].start,
                        w[0].end,
                        w[1].start,
                        w[1].end
                    ),
                );
            }
        }
    }

    // EV003: per-medium stored order, non-overlap, and routing sanity.
    for (i, c) in schedule.comms().iter().enumerate() {
        if c.medium.index() >= arch.num_media() {
            push(
                "EV003",
                Severity::Error,
                Anchor::Comm { index: i },
                format!("transfer uses unknown medium {}", c.medium),
            );
        } else if !arch.medium_procs(c.medium).contains(&c.from)
            || !arch.medium_procs(c.medium).contains(&c.to)
        {
            push(
                "EV003",
                Severity::Error,
                Anchor::Comm { index: i },
                format!(
                    "transfer endpoints {} -> {} are not both connected to {}",
                    c.from,
                    c.to,
                    arch.medium_name(c.medium)
                ),
            );
        }
    }
    for m in arch.media() {
        let anchor = || Anchor::Medium {
            index: m.index(),
            name: arch.medium_name(m).to_string(),
        };
        let seq = schedule.medium_sequence(m);
        for w in seq.windows(2) {
            if w[1].start < w[0].start {
                push(
                    "EV003",
                    Severity::Error,
                    anchor(),
                    format!(
                        "stored sequence is unsorted: transfer of '{}' precedes '{}' but starts later",
                        alg.name(w[0].src_op),
                        alg.name(w[1].src_op)
                    ),
                );
            } else if w[1].start < w[0].end {
                push(
                    "EV003",
                    Severity::Error,
                    anchor(),
                    format!(
                        "transfers of '{}' and '{}' overlap",
                        alg.name(w[0].src_op),
                        alg.name(w[1].src_op)
                    ),
                );
            }
        }
    }

    // EV004: causality — every consumer starts after producer completion
    // plus, across processors, a delivering transfer's arrival.
    for e in alg.edges() {
        let (Some(ps), Some(pd)) = (schedule.slot(e.src), schedule.slot(e.dst)) else {
            continue; // missing slots already reported by EV001
        };
        if ps.proc == pd.proc {
            if ps.end > pd.start {
                push(
                    "EV004",
                    Severity::Error,
                    op_anchor(alg, e.dst),
                    format!(
                        "starts at {} before its predecessor '{}' completes at {}",
                        pd.start,
                        alg.name(e.src),
                        ps.end
                    ),
                );
            }
        } else {
            // A dedicated transfer to the consumer's processor, or a
            // broadcast on a medium reaching it, must fit in
            // [producer end, consumer start].
            let delivered = schedule.comms().iter().any(|c| {
                c.src_op == e.src
                    && c.start >= ps.end
                    && c.end <= pd.start
                    && c.medium.index() < arch.num_media()
                    && arch.medium_procs(c.medium).contains(&pd.proc)
            });
            if !delivered {
                push(
                    "EV004",
                    Severity::Error,
                    op_anchor(alg, e.dst),
                    format!(
                        "no transfer delivers '{}' from {} to {} inside [{} .. {}]",
                        alg.name(e.src),
                        arch.proc_name(ps.proc),
                        arch.proc_name(pd.proc),
                        ps.end,
                        pd.start
                    ),
                );
            }
        }
    }

    // EV005: WCET consistency between the timing table and slot durations.
    for s in schedule.ops() {
        if s.proc.index() >= arch.num_processors() {
            continue; // EV001 already fired
        }
        match db.wcet(s.op, s.proc) {
            None => push(
                "EV005",
                Severity::Error,
                op_anchor(alg, s.op),
                format!(
                    "scheduled on {} where the timing table forbids it",
                    arch.proc_name(s.proc)
                ),
            ),
            Some(w) => {
                let dur = s.end - s.start;
                if dur != w {
                    push(
                        "EV005",
                        Severity::Error,
                        op_anchor(alg, s.op),
                        format!(
                            "slot duration {} differs from the WCET {} on {}",
                            dur,
                            w,
                            arch.proc_name(s.proc)
                        ),
                    );
                }
            }
        }
    }

    out
}
