//! Sound static latency bounds (pass b).
//!
//! The paper's eq. (1)/(2) latencies `Ls_j`/`La_j` are, for a valid
//! non-preemptive schedule executed at WCET, exactly the completion
//! offsets of the sensor and actuator slots within the period — both the
//! graph of delays and the virtual executive reproduce those instants.
//! The *nominal* bound of an I/O operation is therefore its slot's end.
//!
//! Under a bounded-retry fault plan every retransmission of transfer `i`
//! stretches that slot by `comm_retry_cost(i)`; any completion in period
//! `k` trails its nominal instant by at most the sum of the retry
//! stretches drawn in `k` **on the transfer slots its wait chains can
//! pass through** (its dependency cone — a receive forced at the
//! deadline only fires *earlier* than the stretched arrival). The
//! *fault-aware* bound of an operation therefore adds the worst
//! per-period stretch of its own cone: a sensor with no inbound
//! transfers keeps its nominal bound exactly, while an actuator fed by
//! every transfer absorbs the full per-period total. Plans that drop
//! frames or kill processors degrade through deadline forcing instead;
//! their bounds are flagged unsound ([`LatencyBoundReport::drop_capable`]).

use ecl_aaa::analysis::wcet_chain_bounds;
use ecl_aaa::{AaaError, AlgorithmGraph, ArchitectureGraph, OpId, Schedule, TimeNs, TimingDb};
use ecl_core::faults::{CommFault, FaultPlan};

/// Static latency bounds of one sensor or actuator operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBound {
    /// The I/O operation.
    pub op: OpId,
    /// Worst-case completion offset within the period under nominal
    /// execution — the static `Ls_j`/`La_j` of eq. (1)/(2).
    pub nominal: TimeNs,
    /// Sound bound under the bounded-retry fault plan: `nominal` plus the
    /// worst per-period retry stretch of the transfer slots in the
    /// operation's dependency cone. Equals `nominal` without a plan, and
    /// never exceeds `nominal` plus the plan-wide
    /// [`LatencyBoundReport::retry_stretch`].
    pub faulty: TimeNs,
    /// Critical-path lower bound on the operation's completion (longest
    /// minimal-WCET chain ending at the operation, communications
    /// ignored). `nominal` can never undercut it.
    pub chain: TimeNs,
}

/// Static `Ls`/`La` bounds for every sensor and actuator of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyBoundReport {
    /// The control period the schedule executes under.
    pub period: TimeNs,
    /// Worst per-period total retransmission stretch of the fault plan
    /// (zero without a plan).
    pub retry_stretch: TimeNs,
    /// `true` when the plan can drop frames or kill processors: deadline
    /// forcing then takes over and the `faulty` bounds are not sound.
    pub drop_capable: bool,
    /// Per-sensor bounds, in operation order.
    pub sensors: Vec<LatencyBound>,
    /// Per-actuator bounds, in operation order.
    pub actuators: Vec<LatencyBound>,
}

impl LatencyBoundReport {
    /// The bound entry of `op`, if it is a sensor or actuator.
    pub fn bound_for(&self, op: OpId) -> Option<&LatencyBound> {
        self.sensors
            .iter()
            .chain(self.actuators.iter())
            .find(|b| b.op == op)
    }

    /// The largest fault-aware actuation bound — the static worst-case
    /// `La` of the whole loop.
    pub fn max_actuation_bound(&self) -> TimeNs {
        self.actuators
            .iter()
            .map(|b| b.faulty)
            .max()
            .unwrap_or(TimeNs::ZERO)
    }

    /// Renders the bounds as readable text.
    pub fn render(&self) -> String {
        let mut s = String::from("### Static latency bounds\n");
        s.push_str(&format!(
            "period: {} | retry stretch: {} | retry bounds sound: {}\n",
            self.period,
            self.retry_stretch,
            if self.drop_capable {
                "no (drop-capable plan)"
            } else {
                "yes"
            }
        ));
        let line = |kind: &str, b: &LatencyBound| {
            format!(
                "  {kind} op{}: Ls/La <= {} nominal, <= {} under retries (chain >= {})\n",
                b.op.index(),
                b.nominal,
                b.faulty,
                b.chain
            )
        };
        for b in &self.sensors {
            s.push_str(&line("sensor", b));
        }
        for b in &self.actuators {
            s.push_str(&line("actuator", b));
        }
        s
    }

    /// The bounds as a JSON object fragment (no surrounding braces),
    /// consumed by [`crate::VerifyReport::to_json`].
    pub(crate) fn json_fragment(&self) -> String {
        let list = |bounds: &[LatencyBound]| {
            bounds
                .iter()
                .map(|b| {
                    format!(
                        "{{\"op\": {}, \"nominal_ns\": {}, \"faulty_ns\": {}, \"chain_ns\": {}}}",
                        b.op.index(),
                        b.nominal.as_nanos(),
                        b.faulty.as_nanos(),
                        b.chain.as_nanos()
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "  \"bounds\": {{\n    \"period_ns\": {},\n    \"retry_stretch_ns\": {},\n    \"drop_capable\": {},\n    \"sensors\": [{}],\n    \"actuators\": [{}]\n  }}",
            self.period.as_nanos(),
            self.retry_stretch.as_nanos(),
            self.drop_capable,
            list(&self.sensors),
            list(&self.actuators)
        )
    }
}

/// Whether `plan` can drop a frame or kill a processor anywhere in its
/// horizon (deadline forcing then voids the retry bound).
pub fn plan_is_drop_capable(plan: &FaultPlan, n_comms: usize, n_procs: usize) -> bool {
    (0..n_procs).any(|p| plan.proc_dead_from(p).is_some())
        || (0..n_comms)
            .any(|i| (0..plan.periods()).any(|k| matches!(plan.comm_fault(i, k), CommFault::Drop)))
}

/// The worst per-period total retransmission stretch of `plan` over the
/// schedule's transfer slots.
pub fn worst_retry_stretch(
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    plan: &FaultPlan,
) -> TimeNs {
    let all: Vec<usize> = (0..schedule.comms().len()).collect();
    per_cone_retry_stretch(schedule, arch, plan, &all)
}

/// The worst per-period retransmission stretch of `plan` over the
/// transfer slots in `cone` only — the per-operation refinement of
/// [`worst_retry_stretch`] (an operation's completion can trail its
/// nominal instant only by stretches its wait chains actually cross).
pub fn per_cone_retry_stretch(
    schedule: &Schedule,
    arch: &ArchitectureGraph,
    plan: &FaultPlan,
    cone: &[usize],
) -> TimeNs {
    (0..plan.periods())
        .map(|k| {
            cone.iter()
                .map(|&i| match plan.comm_fault(i, k) {
                    CommFault::Retry(r) => {
                        let cost = schedule.comm_retry_cost(arch, i).unwrap_or(TimeNs::ZERO);
                        TimeNs::from_nanos(cost.as_nanos() * i64::from(r))
                    }
                    _ => TimeNs::ZERO,
                })
                .sum::<TimeNs>()
        })
        .max()
        .unwrap_or(TimeNs::ZERO)
}

/// Derives the static `Ls`/`La` bounds of `schedule` (pass b).
///
/// # Errors
///
/// Propagates cycle detection and unimplementable-operation errors from
/// the shared critical-path helper.
pub fn latency_bounds(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    db: &TimingDb,
    period: TimeNs,
    faults: Option<&FaultPlan>,
) -> Result<LatencyBoundReport, AaaError> {
    let chains = wcet_chain_bounds(alg, arch, db)?;
    let (retry_stretch, drop_capable) = match faults {
        None => (TimeNs::ZERO, false),
        Some(p) => (
            worst_retry_stretch(schedule, arch, p),
            plan_is_drop_capable(p, schedule.comms().len(), arch.num_processors()),
        ),
    };
    let cones = crate::envelope::comm_cones(alg, arch, schedule);
    let entries = |instants: Vec<(OpId, TimeNs)>| {
        instants
            .into_iter()
            .map(|(op, end)| {
                let stretch = match faults {
                    None => TimeNs::ZERO,
                    Some(p) => cones
                        .get(&op)
                        .map(|cone| per_cone_retry_stretch(schedule, arch, p, cone))
                        .unwrap_or(retry_stretch),
                };
                LatencyBound {
                    op,
                    nominal: end,
                    faulty: end + stretch,
                    chain: chains.get(op.index()).copied().unwrap_or(TimeNs::ZERO),
                }
            })
            .collect::<Vec<_>>()
    };
    Ok(LatencyBoundReport {
        period,
        retry_stretch,
        drop_capable,
        sensors: entries(schedule.sensor_instants(alg)),
        actuators: entries(schedule.actuator_instants(alg)),
    })
}
