//! `ecl-verify` — static verification of the four implementation
//! artifacts of the AAA flow (algorithm graph, architecture graph, static
//! schedule, generated executives) plus the structure of the synthesized
//! graph of delays.
//!
//! Everything the rest of the repo *measures* by running a co-simulation
//! or the virtual executive, this crate *proves* from the artifacts
//! alone, before anything runs:
//!
//! * pass (a) — [`verify_schedule`]: feasibility (coverage, non-overlap
//!   per processor and medium, causality, WCET consistency);
//! * pass (b) — [`latency_bounds`]: sound worst-case `Ls`/`La` per
//!   sensor/actuator (paper eq. 1/2), nominal and under bounded-retry
//!   fault plans;
//! * pass (c) — [`verify_executives`]: happens-before analysis of the
//!   generated executives (deadlocks, cross-period races, unreachable
//!   operations, dead transfers);
//! * pass (d) — [`lint_delay_graph`]: condition-mapping exhaustiveness,
//!   orphan delay blocks, unarmed synchronization timeouts, period
//!   overrun;
//! * pass (e) — [`fault_envelope`]: abstract interpretation of the
//!   graph-of-delays semantics over the interval domain, yielding sound
//!   `[lo, hi]` completion envelopes for an entire
//!   [`FaultFamily`](ecl_core::faults::FaultFamily) of plans (frame loss
//!   with bounded retransmission, link-outage windows, processor
//!   dropout) and a conclusive safe/unsafe/inconclusive verdict.
//!
//! All passes report through one diagnostics engine ([`Diagnostic`],
//! [`VerifyReport`]) with stable rule codes (`EV001`…, registry in
//! DESIGN.md §10), fixed severities, source-entity anchors, deterministic
//! ordering, and text + JSON renderers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod delay_lint;
mod diag;
mod envelope;
mod executives;
mod feasibility;

pub use bounds::{
    latency_bounds, per_cone_retry_stretch, plan_is_drop_capable, worst_retry_stretch,
    LatencyBound, LatencyBoundReport,
};
pub use delay_lint::lint_delay_graph;
pub use diag::{Anchor, Diagnostic, Severity, VerifyReport};
pub use envelope::{
    envelope_diagnostics, fault_envelope, EnvelopeReport, EnvelopeVerdict, OpEnvelope,
};
pub use executives::verify_executives;
pub use feasibility::verify_schedule;

use ecl_aaa::{codegen, AaaError, AlgorithmGraph, ArchitectureGraph, Schedule, TimeNs, TimingDb};
use ecl_core::faults::{FaultFamily, FaultPlan};

/// Runs every pass over one adequation result: feasibility, latency
/// bounds, executive generation + happens-before analysis, and the
/// delay-graph lint. The returned report carries the deterministic
/// diagnostics of all passes and the [`LatencyBoundReport`].
///
/// # Errors
///
/// Propagates cycle detection and unimplementable-operation errors from
/// the shared critical-path helper; structural defects are reported as
/// diagnostics, not errors.
pub fn verify(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
    schedule: &Schedule,
    period: TimeNs,
    faults: Option<&FaultPlan>,
) -> Result<VerifyReport, AaaError> {
    let mut diagnostics = verify_schedule(alg, arch, db, schedule);

    let bounds = latency_bounds(alg, arch, schedule, db, period, faults)?;
    // EV101: the nominal bound of an I/O operation can never undercut its
    // critical-path chain — a violation means the slot durations and the
    // timing table disagree (EV005 pinpoints where).
    for b in bounds.sensors.iter().chain(bounds.actuators.iter()) {
        if b.nominal < b.chain {
            diagnostics.push(Diagnostic {
                code: "EV101",
                severity: Severity::Error,
                anchor: Anchor::Op {
                    index: b.op.index(),
                    name: alg.name(b.op).to_string(),
                },
                message: format!(
                    "static bound {} undercuts the critical-path lower bound {}",
                    b.nominal, b.chain
                ),
            });
        }
    }
    // EV102: a retry stretch that can push actuation past the period.
    if !bounds.drop_capable && bounds.max_actuation_bound() > period {
        diagnostics.push(Diagnostic {
            code: "EV102",
            severity: Severity::Warn,
            anchor: Anchor::Model,
            message: format!(
                "fault-aware actuation bound {} exceeds the period {} (possible overrun under \
                 retries)",
                bounds.max_actuation_bound(),
                period
            ),
        });
    }
    // EV103: drop-capable plans void the retry bounds.
    if bounds.drop_capable {
        diagnostics.push(Diagnostic {
            code: "EV103",
            severity: Severity::Info,
            anchor: Anchor::Model,
            message: "fault plan can drop frames or kill processors; retry bounds are not sound \
                      (degradation is deadline-forced)"
                .to_string(),
        });
    }

    match codegen::generate(schedule, alg, arch) {
        Ok(g) => diagnostics.extend(verify_executives(&g.executives, alg, arch)),
        Err(e) => diagnostics.push(Diagnostic {
            code: "EV201",
            severity: Severity::Error,
            anchor: Anchor::Model,
            message: format!("executive generation failed: {e}"),
        }),
    }

    diagnostics.extend(lint_delay_graph(alg, arch, schedule, period, faults));

    let mut report = VerifyReport::from_diagnostics(diagnostics);
    report.bounds = Some(bounds);
    Ok(report)
}

/// Runs every pass of [`verify`] plus the fault-envelope abstract
/// interpretation (pass e) over a whole [`FaultFamily`]: the returned
/// report additionally carries the [`EnvelopeReport`] and any EV4xx
/// diagnostics (period or latency-budget envelope violations).
///
/// # Errors
///
/// Propagates the same artifact errors as [`verify`].
pub fn verify_family(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    db: &TimingDb,
    schedule: &Schedule,
    period: TimeNs,
    family: &FaultFamily,
    budget: Option<TimeNs>,
) -> Result<VerifyReport, AaaError> {
    let base = verify(alg, arch, db, schedule, period, None)?;
    let env = fault_envelope(alg, arch, schedule, period, family, budget);
    let mut diagnostics = base.diagnostics().to_vec();
    diagnostics.extend(envelope_diagnostics(alg, &env));
    let mut report = VerifyReport::from_diagnostics(diagnostics);
    report.bounds = base.bounds;
    report.envelope = Some(env);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_aaa::codegen::{Executive, Instr};
    use ecl_aaa::{
        adequation, AdequationOptions, MediumId, OpId, ProcId, ScheduledComm, ScheduledOp,
    };
    use ecl_core::faults::FaultConfig;

    fn us(v: i64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    /// s on p0, f on p1, a on p0 over one bus — two transfers, a
    /// rendezvous on each side.
    fn distributed_case() -> (AlgorithmGraph, ArchitectureGraph, TimingDb, Schedule) {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("sample");
        let f = alg.add_function("control");
        let a = alg.add_actuator("actuate");
        alg.add_edge(s, f, 2).unwrap();
        alg.add_edge(f, a, 2).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("ecu0", "arm");
        let p1 = arch.add_processor("ecu1", "arm");
        arch.add_bus("can", &[p0, p1], us(10), us(5)).unwrap();
        let mut db = TimingDb::new();
        db.set(s, p0, us(50));
        db.set(f, p1, us(100));
        db.set(a, p0, us(50));
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        (alg, arch, db, schedule)
    }

    fn period() -> TimeNs {
        TimeNs::from_millis(1)
    }

    #[test]
    fn clean_schedule_verifies_without_errors() {
        let (alg, arch, db, schedule) = distributed_case();
        let report = verify(&alg, &arch, &db, &schedule, period(), None).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.count(Severity::Error), 0);
        // The nominal rendezvous notes (EV303) are informational only.
        assert!(report.has_code("EV303"));
        assert!(report.bounds.is_some());
    }

    #[test]
    fn bounds_dominate_replay_instants() {
        let (alg, arch, db, schedule) = distributed_case();
        let report = verify(&alg, &arch, &db, &schedule, period(), None).unwrap();
        let bounds = report.bounds.as_ref().unwrap();
        let g = codegen::generate(&schedule, &alg, &arch).unwrap();
        let replay = codegen::replay(&g, &arch).unwrap();
        for (op, _, end) in &replay.op_end {
            if let Some(b) = bounds.bound_for(*op) {
                assert!(*end <= b.nominal, "op {op}: {} > {}", end, b.nominal);
                assert!(b.nominal >= b.chain);
            }
        }
    }

    #[test]
    fn retry_plan_widens_bounds_soundly() {
        let (alg, arch, db, schedule) = distributed_case();
        // Deterministic seed scan for a retries-only plan with activity.
        let plan = (0..4096u64)
            .find_map(|seed| {
                let cfg = FaultConfig {
                    seed,
                    frame_loss_rate: 0.2,
                    max_retries: 3,
                    ..Default::default()
                };
                let p = FaultPlan::generate(&cfg, &schedule, &arch, 8).unwrap();
                let drops = plan_is_drop_capable(&p, schedule.comms().len(), 2);
                (!p.is_trivial() && !drops).then_some(p)
            })
            .expect("a retries-only plan exists");
        let report = verify(&alg, &arch, &db, &schedule, period(), Some(&plan)).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        let bounds = report.bounds.as_ref().unwrap();
        assert!(!bounds.drop_capable);
        assert!(bounds.retry_stretch > TimeNs::ZERO);
        for b in bounds.sensors.iter().chain(bounds.actuators.iter()) {
            assert!(b.faulty >= b.nominal);
            assert!(b.faulty <= b.nominal + bounds.retry_stretch);
        }
        // Per-cone refinement: the sensor waits on no transfer, so its
        // bound stays exactly nominal; the actuator's wait chains cross
        // every transfer, so it absorbs the full per-period stretch.
        let s = &bounds.sensors[0];
        assert_eq!(s.faulty, s.nominal);
        let a = &bounds.actuators[0];
        assert_eq!(a.faulty, a.nominal + bounds.retry_stretch);
    }

    #[test]
    fn corrupted_schedule_overlap_triggers_ev002() {
        let (alg, arch, db, schedule) = distributed_case();
        // Pull the actuator's slot back so it overlaps the sensor's on p0.
        let ops = schedule
            .ops()
            .iter()
            .map(|s| {
                let mut s = *s;
                if alg.kind(s.op) == ecl_aaa::OpKind::Actuator {
                    s.start = us(10);
                    s.end = us(60);
                }
                s
            })
            .collect();
        let corrupted = Schedule::from_parts(ops, schedule.comms().to_vec());
        let report = verify(&alg, &arch, &db, &corrupted, period(), None).unwrap();
        assert!(!report.is_clean());
        assert!(report.has_code("EV002"), "{}", report.render());
        // Causality breaks too: the actuator now precedes its producer.
        assert!(report.has_code("EV004"));
    }

    #[test]
    fn overlapping_transfers_trigger_ev003() {
        let (alg, arch, db, schedule) = distributed_case();
        let mut comms = schedule.comms().to_vec();
        let mut extra = comms[0];
        extra.start += TimeNs::from_nanos(1);
        extra.end += TimeNs::from_nanos(1);
        comms.push(extra);
        let corrupted = Schedule::from_parts(schedule.ops().to_vec(), comms);
        let report = verify(&alg, &arch, &db, &corrupted, period(), None).unwrap();
        assert!(report.has_code("EV003"), "{}", report.render());
    }

    #[test]
    fn wcet_mismatch_triggers_ev005_and_ev101() {
        let (alg, arch, mut db, schedule) = distributed_case();
        // Claim the sensor is slower than its scheduled slot: the slot
        // duration disagrees (EV005) and the static bound undercuts the
        // new critical path (EV101).
        let s = alg.ops().next().unwrap();
        let p0 = arch.processors().next().unwrap();
        db.set(s, p0, us(500));
        let report = verify(&alg, &arch, &db, &schedule, period(), None).unwrap();
        assert!(report.has_code("EV005"), "{}", report.render());
        assert!(report.has_code("EV101"));
    }

    #[test]
    fn racy_executive_pair_triggers_ev202() {
        let (alg, arch, _, _) = distributed_case();
        let ops: Vec<OpId> = alg.ops().collect();
        let procs: Vec<ProcId> = arch.processors().collect();
        let m: MediumId = arch.media().next().unwrap();
        // Crossed receives: each processor consumes before the matching
        // send is posted — both reads race with the previous period.
        let e0 = Executive {
            proc: procs[0],
            instrs: vec![
                Instr::Recv {
                    src_op: ops[1],
                    medium: m,
                    from: procs[1],
                },
                Instr::Send {
                    src_op: ops[0],
                    medium: m,
                    to: procs[1],
                },
            ],
        };
        let e1 = Executive {
            proc: procs[1],
            instrs: vec![
                Instr::Recv {
                    src_op: ops[0],
                    medium: m,
                    from: procs[0],
                },
                Instr::Send {
                    src_op: ops[1],
                    medium: m,
                    to: procs[0],
                },
            ],
        };
        let diags = verify_executives(&[e0, e1], &alg, &arch);
        let races = diags.iter().filter(|d| d.code == "EV202").count();
        assert_eq!(races, 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code != "EV201"));
    }

    #[test]
    fn orphan_receive_triggers_ev201() {
        let (alg, arch, _, _) = distributed_case();
        let ops: Vec<OpId> = alg.ops().collect();
        let procs: Vec<ProcId> = arch.processors().collect();
        let m: MediumId = arch.media().next().unwrap();
        let e0 = Executive {
            proc: procs[0],
            instrs: vec![Instr::Recv {
                src_op: ops[1],
                medium: m,
                from: procs[1],
            }],
        };
        let e1 = Executive {
            proc: procs[1],
            instrs: vec![],
        };
        let diags = verify_executives(&[e0, e1], &alg, &arch);
        assert!(diags.iter().any(|d| d.code == "EV201"), "{diags:?}");
        // All three algorithm operations are unreachable here.
        assert_eq!(diags.iter().filter(|d| d.code == "EV203").count(), 3);
    }

    #[test]
    fn dead_transfer_triggers_ev204() {
        let (alg, arch, _, _) = distributed_case();
        let ops: Vec<OpId> = alg.ops().collect();
        let procs: Vec<ProcId> = arch.processors().collect();
        let m: MediumId = arch.media().next().unwrap();
        let execs = vec![
            Executive {
                proc: procs[0],
                instrs: vec![
                    Instr::Compute {
                        op: ops[0],
                        wcet: us(1),
                    },
                    Instr::Compute {
                        op: ops[1],
                        wcet: us(1),
                    },
                    Instr::Compute {
                        op: ops[2],
                        wcet: us(1),
                    },
                    Instr::Send {
                        src_op: ops[0],
                        medium: m,
                        to: procs[1],
                    },
                ],
            },
            Executive {
                proc: procs[1],
                instrs: vec![],
            },
        ];
        let diags = verify_executives(&execs, &alg, &arch);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "EV204" && d.severity == Severity::Warn),
            "{diags:?}"
        );
    }

    #[test]
    fn condition_gap_and_orphan_lint() {
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let mode = alg.add_function("mode");
        let fast = alg.add_function("fast");
        let slow = alg.add_function("slow");
        let stray = alg.add_function("stray");
        let a = alg.add_actuator("a");
        alg.add_edge(s, mode, 1).unwrap();
        alg.add_edge(s, stray, 1).unwrap();
        // Branches 0 and 2: branch 1 selects nothing.
        alg.set_condition(fast, mode, 0).unwrap();
        alg.set_condition(slow, mode, 2).unwrap();
        alg.add_edge(fast, a, 1).unwrap();
        alg.add_edge(slow, a, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        arch.add_processor("p0", "arm");
        let mut db = TimingDb::new();
        for op in alg.ops() {
            db.set_default(op, us(10));
        }
        let schedule = adequation(&alg, &arch, &db, AdequationOptions::default()).unwrap();
        let diags = lint_delay_graph(&alg, &arch, &schedule, period(), None);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "EV301" && d.message.contains("branch 1")),
            "{diags:?}"
        );
        // 'stray' computes but feeds nothing.
        assert!(diags.iter().any(|d| d.code == "EV302"
            && matches!(&d.anchor, Anchor::Op { name, .. } if name == "stray")));
    }

    #[test]
    fn drop_capable_plan_flags_degradation() {
        let (alg, arch, db, schedule) = distributed_case();
        let plan = (0..4096u64)
            .find_map(|seed| {
                let cfg = FaultConfig {
                    seed,
                    frame_loss_rate: 0.9,
                    max_retries: 0,
                    ..Default::default()
                };
                let p = FaultPlan::generate(&cfg, &schedule, &arch, 4).unwrap();
                plan_is_drop_capable(&p, schedule.comms().len(), 2).then_some(p)
            })
            .expect("a drop-capable plan exists");
        let report = verify(&alg, &arch, &db, &schedule, period(), Some(&plan)).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.has_code("EV103"));
        assert!(report.has_code("EV305"));
        assert!(report.bounds.as_ref().unwrap().drop_capable);
    }

    #[test]
    fn trivial_family_envelope_is_exact_and_safe() {
        use ecl_core::interval::TimeInterval;
        let (alg, arch, _, schedule) = distributed_case();
        let env = fault_envelope(
            &alg,
            &arch,
            &schedule,
            period(),
            &FaultFamily::trivial(),
            None,
        );
        assert_eq!(env.verdict(), EnvelopeVerdict::Safe);
        for e in &env.ops {
            let slot = schedule.slot(e.op).unwrap();
            assert_eq!(
                e.nominal, slot.end,
                "nominal replay instant is the slot end"
            );
            assert_eq!(e.completion, TimeInterval::point(slot.end));
            assert!(!e.may_be_absent);
        }
        assert_eq!(env.sensors.len(), 1);
        assert_eq!(env.actuators.len(), 1);
        assert_eq!(env.max_actuation_hi(), env.actuators[0].nominal);
    }

    #[test]
    fn drop_family_envelope_caps_at_the_forced_deadline() {
        use ecl_core::interval::TimeInterval;
        let (alg, arch, db, schedule) = distributed_case();
        let fam = FaultFamily {
            frame_loss: true,
            max_retries: 3,
            link_outage: false,
            proc_dropout: false,
        };
        let env = fault_envelope(&alg, &arch, &schedule, period(), &fam, None);
        assert_eq!(env.verdict(), EnvelopeVerdict::Inconclusive);
        // The sensor waits on nothing: its envelope stays a point even
        // though the family is fault-active.
        let s = &env.sensors[0];
        assert_eq!(s.completion, TimeInterval::point(s.nominal));
        assert!(!s.may_be_absent);
        // Worst case for the actuator: its rendezvous is forced at
        // kP + (P - 1ns), then its own slot runs.
        let a = &env.actuators[0];
        let a_slot = schedule.slot(a.op).unwrap();
        let forced = period() - TimeNs::from_nanos(1) + (a_slot.end - a_slot.start);
        assert_eq!(a.completion.hi(), forced);
        assert!(a.completion.lo() <= a.nominal && a.nominal <= a.completion.hi());
        assert!(a.may_be_absent, "a dropped transfer can silence actuation");
        // verify_family surfaces the envelope as EV402 + EV403 without
        // making the schedule an error.
        let report = verify_family(&alg, &arch, &db, &schedule, period(), &fam, None).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.has_code("EV402"), "{}", report.render());
        assert!(report.has_code("EV403"));
        assert!(report.envelope.is_some());
    }

    #[test]
    fn infeasible_period_is_conclusively_unsafe() {
        let (alg, arch, db, schedule) = distributed_case();
        let env = fault_envelope(
            &alg,
            &arch,
            &schedule,
            us(100),
            &FaultFamily::trivial(),
            None,
        );
        assert_eq!(env.verdict(), EnvelopeVerdict::Unsafe);
        let report = verify_family(
            &alg,
            &arch,
            &db,
            &schedule,
            us(100),
            &FaultFamily::trivial(),
            None,
        )
        .unwrap();
        assert!(report.has_code("EV401"), "{}", report.render());
        assert!(!report.is_clean());
    }

    #[test]
    fn latency_budget_violations_are_typed() {
        let (alg, arch, db, schedule) = distributed_case();
        // The nominal actuation instant already exceeds a 200us budget:
        // conclusively infeasible.
        let tight = verify_family(
            &alg,
            &arch,
            &db,
            &schedule,
            period(),
            &FaultFamily::trivial(),
            Some(us(200)),
        )
        .unwrap();
        assert!(tight.has_code("EV405"), "{}", tight.render());
        assert!(!tight.is_clean());
        assert_eq!(
            tight.envelope.as_ref().unwrap().verdict(),
            EnvelopeVerdict::Unsafe
        );
        // A 300us budget fits the nominal instant but not the widened
        // envelope: possible violation only.
        let fam = FaultFamily {
            frame_loss: true,
            max_retries: 3,
            link_outage: false,
            proc_dropout: false,
        };
        let loose =
            verify_family(&alg, &arch, &db, &schedule, period(), &fam, Some(us(300))).unwrap();
        assert!(loose.has_code("EV404"), "{}", loose.render());
        assert!(!loose.has_code("EV405"));
        assert!(loose.is_clean());
    }

    #[test]
    fn family_report_rendering_is_deterministic_and_complete() {
        let (alg, arch, db, schedule) = distributed_case();
        let fam = FaultFamily {
            frame_loss: true,
            max_retries: 2,
            link_outage: true,
            proc_dropout: true,
        };
        let r1 = verify_family(&alg, &arch, &db, &schedule, period(), &fam, Some(us(500))).unwrap();
        let r2 = verify_family(&alg, &arch, &db, &schedule, period(), &fam, Some(us(500))).unwrap();
        assert_eq!(r1.render(), r2.render());
        assert_eq!(r1.to_json(), r2.to_json());
        let text = r1.render();
        assert!(text.contains("### Static latency bounds"));
        assert!(text.contains("### Fault envelope"));
        assert!(text.contains("verdict:"));
        let json = r1.to_json();
        assert!(json.contains("\"bounds\""));
        assert!(json.contains("\"envelope\""));
        assert!(json.contains("\"verdict\""));
        assert!(json.ends_with("\n}\n"));
    }

    #[test]
    fn period_overrun_triggers_ev304() {
        let (alg, arch, db, schedule) = distributed_case();
        let report = verify(&alg, &arch, &db, &schedule, us(100), None).unwrap();
        assert!(report.has_code("EV304"), "{}", report.render());
        assert!(!report.is_clean());
    }

    #[test]
    fn report_rendering_is_deterministic_and_complete() {
        let (alg, arch, db, schedule) = distributed_case();
        let r1 = verify(&alg, &arch, &db, &schedule, period(), None).unwrap();
        let r2 = verify(&alg, &arch, &db, &schedule, period(), None).unwrap();
        assert_eq!(r1.render(), r2.render());
        assert_eq!(r1.to_json(), r2.to_json());
        let text = r1.render();
        assert!(text.starts_with("## Static verification\n"));
        assert!(text.contains("### Static latency bounds"));
        let json = r1.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("\n}\n"));
        assert!(json.contains("\"bounds\""));
        assert!(json.contains("\"errors\": 0"));
    }

    #[test]
    fn diagnostics_order_errors_first() {
        let report = VerifyReport::from_diagnostics(vec![
            Diagnostic {
                code: "EV302",
                severity: Severity::Warn,
                anchor: Anchor::Op {
                    index: 3,
                    name: "x".into(),
                },
                message: "m".into(),
            },
            Diagnostic {
                code: "EV004",
                severity: Severity::Error,
                anchor: Anchor::Op {
                    index: 9,
                    name: "y".into(),
                },
                message: "m".into(),
            },
            Diagnostic {
                code: "EV303",
                severity: Severity::Info,
                anchor: Anchor::Model,
                message: "m".into(),
            },
        ]);
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["EV004", "EV302", "EV303"]);
        assert!(!report.is_clean());
        assert_eq!(report.count(Severity::Error), 1);
    }

    #[test]
    fn from_parts_schedule_with_hand_built_slots_verifies() {
        // The public surface is enough to build and verify a schedule
        // without the adequation.
        let mut alg = AlgorithmGraph::new();
        let s = alg.add_sensor("s");
        let a = alg.add_actuator("a");
        alg.add_edge(s, a, 1).unwrap();
        let mut arch = ArchitectureGraph::new();
        let p0 = arch.add_processor("p0", "arm");
        let mut db = TimingDb::new();
        db.set(s, p0, us(10));
        db.set(a, p0, us(10));
        let schedule = Schedule::from_parts(
            vec![
                ScheduledOp {
                    op: s,
                    proc: p0,
                    start: TimeNs::ZERO,
                    end: us(10),
                },
                ScheduledOp {
                    op: a,
                    proc: p0,
                    start: us(10),
                    end: us(20),
                },
            ],
            Vec::<ScheduledComm>::new(),
        );
        let report = verify(&alg, &arch, &db, &schedule, period(), None).unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }
}
