//! Fault-envelope abstract interpretation (pass e).
//!
//! Where [`crate::latency_bounds`] bounds one *concrete* retries-only
//! [`FaultPlan`](ecl_core::faults::FaultPlan), this pass computes sound
//! `[lo, hi]` completion intervals for an entire [`FaultFamily`] — every
//! plan any seed can draw under a set of fault axes — by abstractly
//! interpreting the graph-of-delays synthesis rules of
//! `ecl_core::delays::build` over the interval domain
//! ([`TimeInterval`]):
//!
//! * a retried transfer stretches its slot by at most
//!   `max_retries * comm_retry_cost`;
//! * a dropped transfer or dead producer leaves a rendezvous arm silent;
//!   under a non-trivial plan every multi-source rendezvous carries a
//!   timeout arm that forces it at `T = period - 1ns`, so the join fires
//!   in `[min(lo, T), max(nominal, min(hi, T))]` — the widening rule for
//!   outage windows;
//! * an operation on a dead processor, or a transfer the family can
//!   drop, *may be absent*: if it fires at all, its instant is inside
//!   the interval, but no completion is guaranteed.
//!
//! The per-operation envelopes roll up into a [`EnvelopeVerdict`]: a
//! schedule whose sensor/actuation envelopes provably fit the period (and
//! cannot be absent) is conclusively *safe* — no member plan can overrun —
//! while an envelope whose *lower* bound already exceeds the period is
//! conclusively *unsafe* for every member. Both verdicts let the fleet
//! skip co-simulation (`SweepConfig::prune_static`) and let the daemon
//! reject infeasible deployments before queueing. Registry codes EV401 —
//! EV405 (DESIGN.md §10); the EV2xx range already names executive
//! analysis, so the envelope rules take the 4xx block.

use std::collections::{HashMap, HashSet};

use ecl_aaa::{AlgorithmGraph, ArchitectureGraph, OpId, ProcId, Schedule, TimeNs};
use ecl_core::faults::FaultFamily;
use ecl_core::interval::TimeInterval;

use crate::diag::{Anchor, Diagnostic, Severity};

/// The abstract completion of one operation under a whole fault family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEnvelope {
    /// The operation.
    pub op: OpId,
    /// Exact completion offset of the fault-free (trivial) member plan.
    pub nominal: TimeNs,
    /// Sound interval containing the completion offset of *every* member
    /// plan, whenever the operation completes at all.
    pub completion: TimeInterval,
    /// `true` when some member plan silences the operation for a period
    /// (dead processor, or a rendezvous that can deadlock without a
    /// timeout arm): the interval then bounds only the periods it fires.
    pub may_be_absent: bool,
}

/// The conclusive outcome of the envelope analysis for one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeVerdict {
    /// Every sensor and actuator envelope fits the period (and the
    /// latency budget, when given) and cannot be absent: no member plan
    /// of the family can overrun. Co-simulation is redundant.
    Safe,
    /// Some I/O envelope's *lower* bound exceeds the period (or an
    /// actuation lower bound exceeds the budget): every member plan
    /// overruns. Co-simulation is redundant.
    Unsafe,
    /// The envelope straddles the limit, or completions may be absent:
    /// only a concrete replay can decide.
    Inconclusive,
}

impl std::fmt::Display for EnvelopeVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeVerdict::Safe => write!(f, "safe"),
            EnvelopeVerdict::Unsafe => write!(f, "unsafe"),
            EnvelopeVerdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// Sound completion envelopes of a schedule under a fault family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeReport {
    /// The control period the schedule executes under.
    pub period: TimeNs,
    /// The control design's end-to-end actuation latency budget, if one
    /// was supplied (EV404/EV405 fire against it).
    pub budget: Option<TimeNs>,
    /// The abstracted fault family.
    pub family: FaultFamily,
    /// Envelope of every scheduled operation, in schedule order.
    pub ops: Vec<OpEnvelope>,
    /// Sensor envelopes (`Ls` bounds), in operation order.
    pub sensors: Vec<OpEnvelope>,
    /// Actuator envelopes (`La` bounds), in operation order.
    pub actuators: Vec<OpEnvelope>,
}

impl EnvelopeReport {
    /// The envelope of `op`, if it was scheduled.
    pub fn envelope_for(&self, op: OpId) -> Option<&OpEnvelope> {
        self.ops.iter().find(|e| e.op == op)
    }

    /// The largest actuation upper bound — the family-wide worst-case
    /// `La` whenever actuation happens.
    pub fn max_actuation_hi(&self) -> TimeNs {
        self.actuators
            .iter()
            .map(|e| e.completion.hi())
            .max()
            .unwrap_or(TimeNs::ZERO)
    }

    /// The conclusive verdict of the analysis (see [`EnvelopeVerdict`]).
    pub fn verdict(&self) -> EnvelopeVerdict {
        let mut conclusively_unsafe = false;
        let mut conclusively_safe = true;
        for e in self.sensors.iter().chain(self.actuators.iter()) {
            if e.completion.lo() > self.period {
                conclusively_unsafe = true;
            }
            if e.may_be_absent || e.completion.hi() > self.period {
                conclusively_safe = false;
            }
        }
        if let Some(budget) = self.budget {
            for e in &self.actuators {
                if e.completion.lo() > budget {
                    conclusively_unsafe = true;
                }
                if e.completion.hi() > budget {
                    conclusively_safe = false;
                }
            }
        }
        if conclusively_unsafe {
            EnvelopeVerdict::Unsafe
        } else if conclusively_safe {
            EnvelopeVerdict::Safe
        } else {
            EnvelopeVerdict::Inconclusive
        }
    }

    /// Renders the envelopes as readable text.
    pub fn render(&self) -> String {
        let mut s = String::from("### Fault envelope\n");
        s.push_str(&format!(
            "family: loss={} retries<={} outage={} dropout={} | verdict: {} | period: {}\n",
            if self.family.frame_loss { "yes" } else { "no" },
            self.family.max_retries,
            if self.family.link_outage { "yes" } else { "no" },
            if self.family.proc_dropout {
                "yes"
            } else {
                "no"
            },
            self.verdict(),
            self.period
        ));
        if let Some(b) = self.budget {
            s.push_str(&format!("latency budget: {b}\n"));
        }
        let line = |kind: &str, e: &OpEnvelope| {
            format!(
                "  {kind} op{}: {} nominal {}{}\n",
                e.op.index(),
                e.completion,
                e.nominal,
                if e.may_be_absent {
                    " (may be absent)"
                } else {
                    ""
                }
            )
        };
        for e in &self.sensors {
            s.push_str(&line("sensor", e));
        }
        for e in &self.actuators {
            s.push_str(&line("actuator", e));
        }
        s
    }

    /// The envelopes as a JSON object fragment (no surrounding braces),
    /// consumed by [`crate::VerifyReport::to_json`].
    pub(crate) fn json_fragment(&self) -> String {
        let list = |envs: &[OpEnvelope]| {
            envs.iter()
                .map(|e| {
                    format!(
                        "{{\"op\": {}, \"nominal_ns\": {}, \"lo_ns\": {}, \"hi_ns\": {}, \"may_be_absent\": {}}}",
                        e.op.index(),
                        e.nominal.as_nanos(),
                        e.completion.lo().as_nanos(),
                        e.completion.hi().as_nanos(),
                        e.may_be_absent
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "  \"envelope\": {{\n    \"period_ns\": {},\n    \"budget_ns\": {},\n    \"verdict\": \"{}\",\n    \"family\": {{\"frame_loss\": {}, \"max_retries\": {}, \"link_outage\": {}, \"proc_dropout\": {}}},\n    \"sensors\": [{}],\n    \"actuators\": [{}]\n  }}",
            self.period.as_nanos(),
            self.budget
                .map_or_else(|| "null".to_string(), |b| b.as_nanos().to_string()),
            self.verdict(),
            self.family.frame_loss,
            self.family.max_retries,
            self.family.link_outage,
            self.family.proc_dropout,
            list(&self.sensors),
            list(&self.actuators)
        )
    }
}

/// Abstract state of one delay-graph entity: the exact nominal firing
/// offset, a sound `[lo, hi]` interval over all member plans, and whether
/// some member plan can silence it for a period.
#[derive(Debug, Clone, Copy)]
struct Ent {
    nom: TimeNs,
    lo: TimeNs,
    hi: TimeNs,
    absent: bool,
}

impl Ent {
    fn clock() -> Ent {
        Ent {
            nom: TimeNs::ZERO,
            lo: TimeNs::ZERO,
            hi: TimeNs::ZERO,
            absent: false,
        }
    }

    fn shift(self, d: TimeNs) -> Ent {
        Ent {
            nom: self.nom + d,
            lo: self.lo + d,
            hi: self.hi + d,
            absent: self.absent,
        }
    }
}

/// One conditioned group: members sorted by slot start, branch chains in
/// that order, and the tail operation of every branch.
struct Group {
    members: Vec<OpId>,
    branch_of: HashMap<OpId, usize>,
    chains: HashMap<usize, Vec<OpId>>,
    tails: Vec<OpId>,
}

/// The interval interpreter: memoized recursion over the same wiring the
/// graph-of-delays synthesis performs, with plan-specific delays replaced
/// by family-wide interval transfers.
struct Eval<'a> {
    alg: &'a AlgorithmGraph,
    arch: &'a ArchitectureGraph,
    schedule: &'a Schedule,
    family: FaultFamily,
    period: TimeNs,
    /// The timeout-arm firing offset `kP + (P - 1ns)` relative to the
    /// period origin: every forced rendezvous fires here.
    t_force: TimeNs,
    groups: HashMap<OpId, Group>,
    group_of: HashMap<OpId, OpId>,
    op_memo: HashMap<OpId, Ent>,
    comm_memo: Vec<Option<Ent>>,
    join_memo: HashMap<OpId, Ent>,
    visiting: HashSet<u64>,
}

const KIND_OP: u64 = 0;
const KIND_COMM: u64 = 1;
const KIND_GROUP: u64 = 2;

fn key(kind: u64, index: usize) -> u64 {
    (kind << 32) | index as u64
}

impl<'a> Eval<'a> {
    fn new(
        alg: &'a AlgorithmGraph,
        arch: &'a ArchitectureGraph,
        schedule: &'a Schedule,
        period: TimeNs,
        family: FaultFamily,
    ) -> Eval<'a> {
        let mut grouped: HashMap<OpId, Vec<OpId>> = HashMap::new();
        for op in alg.ops() {
            if let Some(c) = alg.condition(op) {
                grouped.entry(c.variable).or_default().push(op);
            }
        }
        let mut groups = HashMap::new();
        let mut group_of = HashMap::new();
        for (var, mut members) in grouped {
            members.sort_by_key(|&o| (schedule.slot(o).map(|s| s.start), o));
            let mut branch_of = HashMap::new();
            let mut chains: HashMap<usize, Vec<OpId>> = HashMap::new();
            for &m in &members {
                let b = alg
                    .condition(m)
                    .expect("grouped because conditioned")
                    .branch;
                branch_of.insert(m, b);
                chains.entry(b).or_default().push(m);
                group_of.insert(m, var);
            }
            let mut tails: Vec<OpId> = chains
                .values()
                .map(|ops| *ops.last().expect("non-empty branch"))
                .collect();
            tails.sort();
            groups.insert(
                var,
                Group {
                    members,
                    branch_of,
                    chains,
                    tails,
                },
            );
        }
        let n_comms = schedule.comms().len();
        Eval {
            alg,
            arch,
            schedule,
            family,
            period,
            t_force: period - TimeNs::from_nanos(1),
            groups,
            group_of,
            op_memo: HashMap::new(),
            comm_memo: vec![None; n_comms],
            join_memo: HashMap::new(),
            visiting: HashSet::new(),
        }
    }

    /// Conservative state for structurally-broken inputs (an unscheduled
    /// operation or a wiring cycle): pessimistic on every bound, flagged
    /// absent so no verdict can become `Safe` through it. Feasibility
    /// diagnostics (EV001/EV004) pinpoint the underlying defect.
    fn degenerate(&self) -> Ent {
        Ent {
            nom: self.period,
            lo: TimeNs::ZERO,
            hi: self.period,
            absent: true,
        }
    }

    /// Abstract activation of a transfer slot, mirroring the medium
    /// executive: the slot starts at `max(data ready, medium free)`,
    /// and every non-trivial member plan deadline-checks *both* arms —
    /// a late post, a late previous slot or a dropped previous slot
    /// forces the start at exactly `t_force`. The trivial member
    /// (always in the family) starts at `base_nom`, uncapped.
    fn forced_join(&self, arms: &[Ent]) -> Ent {
        if arms.len() == 1 {
            return arms[0];
        }
        let base_nom = arms.iter().map(|a| a.nom).max().unwrap_or(TimeNs::ZERO);
        let base_lo = arms.iter().map(|a| a.lo).max().unwrap_or(TimeNs::ZERO);
        let base_hi = arms.iter().map(|a| a.hi).max().unwrap_or(TimeNs::ZERO);
        let any_absent = arms.iter().any(|a| a.absent);
        if self.family.is_trivial() {
            return Ent {
                nom: base_nom,
                lo: base_lo,
                hi: base_hi,
                absent: any_absent,
            };
        }
        let cap = if any_absent {
            self.t_force
        } else {
            base_hi.min(self.t_force)
        };
        let hi = base_nom.max(cap);
        let lo = base_lo.min(self.t_force).min(hi);
        Ent {
            nom: base_nom,
            lo,
            hi,
            absent: any_absent,
        }
    }

    /// Abstract gate of a computation, mirroring the processor
    /// executive: the program counter reaches the wait at `reach`
    /// (sequential order on the processor — **never** deadline-forced,
    /// so a late same-processor predecessor pushes every later start
    /// past the period boundary), then merges the comm arrivals whose
    /// `Synchronization` timeout arm, armed by every non-trivial member
    /// plan, *forces* the start at exactly `t_force` when an arrival is
    /// dropped or lands past the deadline — discarding even `reach`.
    fn gate_join(&self, reach: Ent, comms: &[Ent]) -> Ent {
        if comms.is_empty() {
            return reach;
        }
        let nom_c = comms.iter().map(|a| a.nom).max().unwrap_or(TimeNs::ZERO);
        let lo_c = comms.iter().map(|a| a.lo).max().unwrap_or(TimeNs::ZERO);
        let hi_c = comms.iter().map(|a| a.hi).max().unwrap_or(TimeNs::ZERO);
        let any_absent = comms.iter().any(|a| a.absent);
        let nom = reach.nom.max(nom_c);
        let absent = reach.absent || any_absent;
        if self.family.is_trivial() {
            return Ent {
                nom,
                lo: reach.lo.max(lo_c),
                hi: reach.hi.max(hi_c),
                absent,
            };
        }
        // The family can force this gate iff some arrival may be silent
        // or may land past the deadline; a forced start is exactly
        // `t_force`, so it both caps the arrival side of `hi` and pulls
        // `lo` down below an overrunning reach chain.
        let can_force = any_absent || hi_c > self.t_force;
        let cap = if any_absent {
            self.t_force
        } else {
            hi_c.min(self.t_force)
        };
        let gate_lo = reach.lo.max(lo_c);
        Ent {
            nom,
            lo: if can_force {
                gate_lo.min(self.t_force)
            } else {
                gate_lo
            },
            hi: reach.hi.max(nom_c.max(cap)),
            absent,
        }
    }

    /// The arm a consumer waits on for `op`'s output: the operation's own
    /// completion, or — for a conditioned operation — the tails of every
    /// branch of its group (exactly one fires per period).
    fn op_ready_arm(&mut self, op: OpId) -> Ent {
        let Some(&var) = self.group_of.get(&op) else {
            return self.op(op);
        };
        let tails = self.groups[&var].tails.clone();
        let states: Vec<Ent> = tails.into_iter().map(|t| self.op(t)).collect();
        let nom = states.iter().map(|s| s.nom).max().unwrap_or(TimeNs::ZERO);
        let lo = states.iter().map(|s| s.lo).min().unwrap_or(TimeNs::ZERO);
        let hi = states.iter().map(|s| s.hi).max().unwrap_or(TimeNs::ZERO);
        // Conservative: any branch tail the family can silence makes the
        // merged arm possibly silent.
        let absent = states.iter().any(|s| s.absent);
        Ent {
            nom,
            lo,
            hi: hi.max(lo),
            absent,
        }
    }

    /// Latest computation slot before `op` on the same processor.
    fn prev_on_proc(&self, op: OpId) -> Option<OpId> {
        let slot = self.schedule.slot(op)?;
        self.schedule
            .proc_sequence(slot.proc)
            .iter()
            .filter(|s| s.start < slot.start)
            .max_by_key(|s| s.start)
            .map(|s| s.op)
    }

    /// The transfer delivering `src`'s data to `proc` in time for
    /// `before` — earliest qualifying slot (broadcast-aware), as in the
    /// delay-graph synthesis.
    fn delivering_comm(&self, src: OpId, proc: ProcId, before: TimeNs) -> Option<usize> {
        self.schedule
            .comms()
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.src_op == src
                    && c.end <= before
                    && self.arch.medium_procs(c.medium).contains(&proc)
            })
            .min_by_key(|(_, c)| c.end)
            .map(|(i, _)| i)
    }

    /// Abstract completion of transfer slot `i`.
    fn comm(&mut self, i: usize) -> Ent {
        if let Some(e) = self.comm_memo[i] {
            return e;
        }
        if !self.visiting.insert(key(KIND_COMM, i)) {
            return self.degenerate();
        }
        let c = self.schedule.comms()[i];
        let dur = c.end - c.start;
        let mut arms = vec![self.op_ready_arm(c.src_op)];
        let prev = self
            .schedule
            .comms()
            .iter()
            .enumerate()
            .filter(|(_, o)| o.medium == c.medium && o.start < c.start)
            .max_by_key(|(_, o)| o.start)
            .map(|(j, _)| j);
        arms.push(match prev {
            Some(j) => self.comm(j),
            None => Ent::clock(),
        });
        let j = self.forced_join(&arms);
        let stretch = if self.family.admits_retries() {
            let cost = self
                .schedule
                .comm_retry_cost(self.arch, i)
                .unwrap_or(TimeNs::ZERO);
            TimeNs::from_nanos(cost.as_nanos() * i64::from(self.family.max_retries))
        } else {
            TimeNs::ZERO
        };
        let ent = Ent {
            nom: j.nom + dur,
            lo: j.lo + dur,
            hi: j.hi + dur + stretch,
            absent: j.absent || self.family.admits_drops(),
        };
        self.visiting.remove(&key(KIND_COMM, i));
        self.comm_memo[i] = Some(ent);
        ent
    }

    /// Abstract activation of a conditioned group's `EventSelect`.
    fn group_join(&mut self, var: OpId) -> Ent {
        if let Some(&e) = self.join_memo.get(&var) {
            return e;
        }
        if !self.visiting.insert(key(KIND_GROUP, var.index())) {
            return self.degenerate();
        }
        let members = self.groups[&var].members.clone();
        let head = members[0];
        // Previous non-group operation on the processor, or the clock.
        let mut prev = self.prev_on_proc(head);
        while let Some(p) = prev {
            if members.contains(&p) {
                prev = self.prev_on_proc(p);
            } else {
                break;
            }
        }
        let reach = match prev {
            Some(p) => self.op_ready_arm(p),
            None => Ent::clock(),
        };
        let mut arms = Vec::new();
        // Comm arrivals needed by any member from outside the group.
        let group_proc = self.schedule.slot(head).map(|s| s.proc);
        let mut seen: Vec<usize> = Vec::new();
        for &m in &members {
            let Some(slot) = self.schedule.slot(m).copied() else {
                continue;
            };
            for e in self.alg.edges().iter().filter(|e| e.dst == m) {
                if members.contains(&e.src) {
                    continue;
                }
                let Some(pslot) = self.schedule.slot(e.src) else {
                    continue;
                };
                if Some(pslot.proc) != group_proc {
                    if let Some(ci) = self.delivering_comm(e.src, slot.proc, slot.start) {
                        if !seen.contains(&ci) {
                            seen.push(ci);
                        }
                    }
                }
            }
        }
        for ci in seen {
            let arm = self.comm(ci);
            arms.push(arm);
        }
        let j = self.gate_join(reach, &arms);
        self.visiting.remove(&key(KIND_GROUP, var.index()));
        self.join_memo.insert(var, j);
        j
    }

    /// Abstract completion of operation `op`'s delay block.
    fn op(&mut self, op: OpId) -> Ent {
        if let Some(&e) = self.op_memo.get(&op) {
            return e;
        }
        if !self.visiting.insert(key(KIND_OP, op.index())) {
            return self.degenerate();
        }
        let ent = self.op_uncached(op);
        self.visiting.remove(&key(KIND_OP, op.index()));
        self.op_memo.insert(op, ent);
        ent
    }

    fn op_uncached(&mut self, op: OpId) -> Ent {
        let Some(slot) = self.schedule.slot(op).copied() else {
            return self.degenerate();
        };
        let dur = slot.end - slot.start;
        if let Some(&var) = self.group_of.get(&op) {
            // Conditioned member: select fire, then the branch chain runs
            // in sequence up to this member. The branch may simply not be
            // selected, so the completion is never guaranteed.
            let j = self.group_join(var);
            let group = &self.groups[&var];
            let branch = group.branch_of[&op];
            let chain = group.chains[&branch].clone();
            let mut prefix = TimeNs::ZERO;
            for m in chain {
                let Some(s) = self.schedule.slot(m) else {
                    continue;
                };
                prefix += s.end - s.start;
                if m == op {
                    break;
                }
            }
            let mut ent = j.shift(prefix);
            ent.absent = true;
            return ent;
        }
        let reach = match self.prev_on_proc(op) {
            Some(p) => self.op_ready_arm(p),
            None => Ent::clock(),
        };
        let mut arms = Vec::new();
        let mut seen: Vec<usize> = Vec::new();
        for e in self.alg.edges().iter().filter(|e| e.dst == op) {
            let Some(pslot) = self.schedule.slot(e.src) else {
                continue;
            };
            if pslot.proc != slot.proc {
                if let Some(ci) = self.delivering_comm(e.src, slot.proc, slot.start) {
                    if !seen.contains(&ci) {
                        seen.push(ci);
                    }
                }
            }
        }
        for ci in seen {
            let arm = self.comm(ci);
            arms.push(arm);
        }
        let j = self.gate_join(reach, &arms);
        let mut ent = j.shift(dur);
        ent.absent = ent.absent || self.family.proc_dropout;
        ent
    }
}

/// Computes the sound completion envelope of every scheduled operation
/// under `family`, with the `Ls`/`La` envelopes broken out per sensor and
/// actuator. `budget`, when given, is the control design's end-to-end
/// actuation latency budget (EV404/EV405 fire against it).
pub fn fault_envelope(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    period: TimeNs,
    family: &FaultFamily,
    budget: Option<TimeNs>,
) -> EnvelopeReport {
    let mut eval = Eval::new(alg, arch, schedule, period, *family);
    let envelope_of = |eval: &mut Eval<'_>, op: OpId| {
        let e = eval.op(op);
        OpEnvelope {
            op,
            nominal: e.nom,
            completion: TimeInterval::new(e.lo.min(e.hi), e.hi),
            may_be_absent: e.absent,
        }
    };
    let ops: Vec<OpEnvelope> = schedule
        .ops()
        .iter()
        .map(|s| s.op)
        .collect::<Vec<_>>()
        .into_iter()
        .map(|op| envelope_of(&mut eval, op))
        .collect();
    let pick = |ids: Vec<OpId>| {
        ids.into_iter()
            .filter_map(|op| ops.iter().find(|e| e.op == op).copied())
            .collect::<Vec<_>>()
    };
    EnvelopeReport {
        period,
        budget,
        family: *family,
        sensors: pick(alg.sensors()),
        actuators: pick(alg.actuators()),
        ops,
    }
}

/// Translates an envelope report into EV4xx diagnostics.
pub fn envelope_diagnostics(alg: &AlgorithmGraph, report: &EnvelopeReport) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut lower_violation = false;
    for e in report.sensors.iter().chain(report.actuators.iter()) {
        if e.completion.lo() > report.period {
            lower_violation = true;
            diags.push(Diagnostic {
                code: "EV401",
                severity: Severity::Error,
                anchor: Anchor::Op {
                    index: e.op.index(),
                    name: alg.name(e.op).to_string(),
                },
                message: format!(
                    "completion envelope lower bound {} exceeds the period {}: every plan in \
                     the fault family overruns",
                    e.completion.lo(),
                    report.period
                ),
            });
        }
    }
    let worst_hi = report
        .sensors
        .iter()
        .chain(report.actuators.iter())
        .map(|e| e.completion.hi())
        .max()
        .unwrap_or(TimeNs::ZERO);
    if !lower_violation && worst_hi > report.period {
        diags.push(Diagnostic {
            code: "EV402",
            severity: Severity::Warn,
            anchor: Anchor::Model,
            message: format!(
                "completion envelope upper bound {} exceeds the period {}: some plan in the \
                 fault family may overrun",
                worst_hi, report.period
            ),
        });
    }
    if report.family.admits_drops() {
        diags.push(Diagnostic {
            code: "EV403",
            severity: Severity::Info,
            anchor: Anchor::Model,
            message: "fault family admits dropped transfers or dead processors: completions \
                      may be absent and rendezvous are deadline-forced"
                .to_string(),
        });
    }
    if let Some(budget) = report.budget {
        let mut budget_lower_violation = false;
        for e in &report.actuators {
            if e.completion.lo() > budget {
                budget_lower_violation = true;
                diags.push(Diagnostic {
                    code: "EV405",
                    severity: Severity::Error,
                    anchor: Anchor::Op {
                        index: e.op.index(),
                        name: alg.name(e.op).to_string(),
                    },
                    message: format!(
                        "actuation envelope lower bound {} exceeds the latency budget {}: the \
                         control design's margin cannot be met by any plan in the family",
                        e.completion.lo(),
                        budget
                    ),
                });
            }
        }
        if !budget_lower_violation && report.max_actuation_hi() > budget {
            diags.push(Diagnostic {
                code: "EV404",
                severity: Severity::Warn,
                anchor: Anchor::Model,
                message: format!(
                    "actuation envelope upper bound {} exceeds the latency budget {}: some \
                     plan in the family may violate the control design's margin",
                    report.max_actuation_hi(),
                    budget
                ),
            });
        }
    }
    diags
}

/// The backward dependency cone of every operation: the set of transfer
/// slots its wait chains can pass through, following the same wiring the
/// graph-of-delays synthesis performs (previous slot on the processor,
/// delivering transfers, previous transfer on the medium, producer
/// completions, conditioned-group arms). Used by the per-operation retry
/// stretch of [`crate::latency_bounds`].
pub(crate) fn comm_cones(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
) -> HashMap<OpId, Vec<usize>> {
    // Reuse the interpreter's group decomposition and lookups; the cone
    // is plain reachability over the same arm structure.
    let eval = Eval::new(
        alg,
        arch,
        schedule,
        TimeNs::from_millis(1),
        FaultFamily::trivial(),
    );

    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum Node {
        Op(OpId),
        Comm(usize),
        Group(OpId),
    }

    let ready_nodes = |op: OpId| -> Vec<Node> {
        match eval.group_of.get(&op) {
            Some(var) => eval.groups[var]
                .tails
                .iter()
                .map(|&t| Node::Op(t))
                .collect(),
            None => vec![Node::Op(op)],
        }
    };
    let deps = |node: Node| -> Vec<Node> {
        let mut out = Vec::new();
        match node {
            Node::Op(op) => {
                if let Some(&var) = eval.group_of.get(&op) {
                    out.push(Node::Group(var));
                    // Earlier members of the branch chain feed this one.
                    let group = &eval.groups[&var];
                    let branch = group.branch_of[&op];
                    for &m in &group.chains[&branch] {
                        if m == op {
                            break;
                        }
                        out.push(Node::Op(m));
                    }
                    return out;
                }
                let Some(slot) = schedule.slot(op).copied() else {
                    return out;
                };
                if let Some(p) = eval.prev_on_proc(op) {
                    out.extend(ready_nodes(p));
                }
                for e in alg.edges().iter().filter(|e| e.dst == op) {
                    let Some(pslot) = schedule.slot(e.src) else {
                        continue;
                    };
                    if pslot.proc != slot.proc {
                        if let Some(ci) = eval.delivering_comm(e.src, slot.proc, slot.start) {
                            out.push(Node::Comm(ci));
                        }
                    }
                }
            }
            Node::Comm(i) => {
                let c = schedule.comms()[i];
                out.extend(ready_nodes(c.src_op));
                let prev = schedule
                    .comms()
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.medium == c.medium && o.start < c.start)
                    .max_by_key(|(_, o)| o.start)
                    .map(|(j, _)| j);
                if let Some(j) = prev {
                    out.push(Node::Comm(j));
                }
            }
            Node::Group(var) => {
                let group = &eval.groups[&var];
                let head = group.members[0];
                let mut prev = eval.prev_on_proc(head);
                while let Some(p) = prev {
                    if group.members.contains(&p) {
                        prev = eval.prev_on_proc(p);
                    } else {
                        break;
                    }
                }
                if let Some(p) = prev {
                    out.extend(ready_nodes(p));
                }
                let group_proc = schedule.slot(head).map(|s| s.proc);
                for &m in &group.members {
                    let Some(slot) = schedule.slot(m).copied() else {
                        continue;
                    };
                    for e in alg.edges().iter().filter(|e| e.dst == m) {
                        if group.members.contains(&e.src) {
                            continue;
                        }
                        let Some(pslot) = schedule.slot(e.src) else {
                            continue;
                        };
                        if Some(pslot.proc) != group_proc {
                            if let Some(ci) = eval.delivering_comm(e.src, slot.proc, slot.start) {
                                out.push(Node::Comm(ci));
                            }
                        }
                    }
                }
            }
        }
        out
    };

    let mut cones = HashMap::new();
    for s in schedule.ops() {
        let mut cone: Vec<usize> = Vec::new();
        let mut seen: HashSet<Node> = HashSet::new();
        let mut stack = vec![Node::Op(s.op)];
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            if let Node::Comm(i) = node {
                cone.push(i);
            }
            stack.extend(deps(node));
        }
        cone.sort_unstable();
        cones.insert(s.op, cone);
    }
    cones
}
