//! Executive happens-before analysis (pass c).
//!
//! A channel is identified by `(src_op, from, medium)` — exactly the key
//! the synchronization primitives match on. Program order within one
//! executive plus the posting-send / blocking-receive matching induce the
//! happens-before relation. The pass reuses [`check_deadlock_free`] for
//! the fixpoint over one period of the infinite loop and classifies:
//!
//! * **EV201** — a receive that blocks forever (cyclic wait, or a wait on
//!   a channel no executive ever posts).
//! * **EV202** — a blocked receive whose matching send *is* pending later
//!   in the sending executive: nothing orders the post before the
//!   receive, so in the looping executive the receive matches the
//!   *previous* period's generation — an unordered conflicting channel
//!   access (stale read / lost update).
//! * **EV203** — operations of the algorithm graph computed zero or
//!   multiple times across the executives (unreachable / duplicated).
//! * **EV204** — a posted channel no executive ever receives (dead
//!   transfer occupying a medium slot).

use std::collections::HashMap;

use ecl_aaa::codegen::{check_deadlock_free, DeadlockCheck, Executive, Instr};
use ecl_aaa::{AlgorithmGraph, ArchitectureGraph, MediumId, OpId, ProcId};

use crate::diag::{Anchor, Diagnostic, Severity};

/// Runs the happens-before pass over a set of executives.
pub fn verify_executives(
    execs: &[Executive],
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let op_name = |op: OpId| {
        if op.index() < alg.len() {
            alg.name(op).to_string()
        } else {
            op.to_string()
        }
    };
    let proc_anchor = |p: ProcId| Anchor::Proc {
        index: p.index(),
        name: if p.index() < arch.num_processors() {
            arch.proc_name(p).to_string()
        } else {
            p.to_string()
        },
    };

    // EV201 / EV202: blocked receives from the one-period fixpoint. A
    // blocked receive whose matching send appears anywhere in the sending
    // executive is a cross-period race (the loop's previous generation
    // satisfies it, unordered with the current one); a receive with no
    // matching send at all is a hard deadlock.
    if let DeadlockCheck::Deadlocked { cycle, blocked } = check_deadlock_free(execs) {
        for b in &blocked {
            let send_pending = execs
                .iter()
                .find(|e| e.proc == b.from)
                .map(|e| {
                    e.instrs.iter().any(|i| {
                        matches!(*i, Instr::Send { src_op, medium, .. }
                            if src_op == b.src_op && medium == b.medium)
                    })
                })
                .unwrap_or(false);
            let on_cycle = cycle.iter().any(|c| c.proc == b.proc && c.instr == b.instr);
            if send_pending {
                out.push(Diagnostic {
                    code: "EV202",
                    severity: Severity::Error,
                    anchor: proc_anchor(b.proc),
                    message: format!(
                        "instruction {}: {} — the send is unordered with the receive, which \
                         matches the previous period's generation (stale read){}",
                        b.instr,
                        b,
                        if on_cycle { " (on a cyclic wait)" } else { "" }
                    ),
                });
            } else {
                out.push(Diagnostic {
                    code: "EV201",
                    severity: Severity::Error,
                    anchor: proc_anchor(b.proc),
                    message: format!(
                        "instruction {} blocks forever: {} (no executive posts the channel){}",
                        b.instr,
                        b,
                        if on_cycle { " (on a cyclic wait)" } else { "" }
                    ),
                });
            }
        }
    }

    // Channel access census: posts and receives per (src_op, from, medium).
    type Channel = (OpId, ProcId, MediumId);
    let mut posts: HashMap<Channel, usize> = HashMap::new();
    let mut recvs: HashMap<Channel, usize> = HashMap::new();
    let mut computed: HashMap<OpId, usize> = HashMap::new();
    for e in execs {
        for i in &e.instrs {
            match *i {
                Instr::Compute { op, .. } => *computed.entry(op).or_default() += 1,
                Instr::Send { src_op, medium, .. } => {
                    *posts.entry((src_op, e.proc, medium)).or_default() += 1;
                }
                Instr::Recv {
                    src_op,
                    medium,
                    from,
                } => *recvs.entry((src_op, from, medium)).or_default() += 1,
            }
        }
    }

    // EV203: every operation of the algorithm computed exactly once.
    for op in alg.ops() {
        let n = computed.get(&op).copied().unwrap_or(0);
        if n != 1 {
            out.push(Diagnostic {
                code: "EV203",
                severity: Severity::Error,
                anchor: Anchor::Op {
                    index: op.index(),
                    name: alg.name(op).to_string(),
                },
                message: if n == 0 {
                    "never computed by any executive (unreachable)".to_string()
                } else {
                    format!("computed {n} times across the executives")
                },
            });
        }
    }

    // EV204: posted channels nobody receives.
    let mut dead: Vec<Channel> = posts
        .keys()
        .filter(|k| !recvs.contains_key(*k))
        .copied()
        .collect();
    dead.sort();
    for (src_op, from, medium) in dead {
        out.push(Diagnostic {
            code: "EV204",
            severity: Severity::Warn,
            anchor: proc_anchor(from),
            message: format!(
                "posts '{}' on {} but no executive receives it (dead transfer)",
                op_name(src_op),
                medium
            ),
        });
    }

    out
}
