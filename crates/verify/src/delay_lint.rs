//! Delay-graph lint (pass d).
//!
//! The graph-of-delays synthesis (`ecl-core::delays::build`) is a
//! deterministic function of the algorithm, the schedule, and the fault
//! plan; this pass lints the structure that synthesis *will* produce
//! without building a simulator model:
//!
//! * **EV301** — non-exhaustive condition mapping: the `EventSelect` of a
//!   condition variable is sized `max branch + 1`, so a gap in the used
//!   branch indices is an output that can be selected but activates
//!   nothing (the period produces no actuation).
//! * **EV302** — orphan delay block: a non-actuator operation with no
//!   successor; its completion event drives nothing.
//! * **EV303** — synchronization arms with no timeout: the rendezvous of
//!   a cross-processor arrival is only armed with a timeout when a
//!   non-trivial fault plan is supplied, so without one any dropped frame
//!   would deadlock the rendezvous forever.
//! * **EV304** — the schedule's makespan exceeds the period: the loop
//!   cannot sustain `Ts` (the synthesis rejects this outright).
//! * **EV305** — a drop-capable fault plan degrades a rendezvous through
//!   its timeout arm: completions are forced to the period boundary, the
//!   activation-jitter hazard the paper warns about.

use std::collections::BTreeMap;

use ecl_aaa::{AlgorithmGraph, ArchitectureGraph, OpId, OpKind, Schedule, TimeNs};
use ecl_core::faults::FaultPlan;

use crate::bounds::plan_is_drop_capable;
use crate::diag::{Anchor, Diagnostic, Severity};

fn op_anchor(alg: &AlgorithmGraph, op: OpId) -> Anchor {
    Anchor::Op {
        index: op.index(),
        name: alg.name(op).to_string(),
    }
}

/// Operations whose activation is a multi-source rendezvous: they have a
/// cross-processor predecessor delivered by a scheduled transfer, so the
/// synthesis joins the processor chain and the arrival in a
/// `Synchronization` block.
fn rendezvous_ops(alg: &AlgorithmGraph, schedule: &Schedule) -> Vec<OpId> {
    let mut out = Vec::new();
    for s in schedule.ops() {
        let cross = alg
            .edges()
            .iter()
            .any(|e| e.dst == s.op && schedule.slot(e.src).is_some_and(|ps| ps.proc != s.proc));
        if cross {
            out.push(s.op);
        }
    }
    out.sort();
    out
}

/// Runs the delay-graph lint over one schedule.
pub fn lint_delay_graph(
    alg: &AlgorithmGraph,
    arch: &ArchitectureGraph,
    schedule: &Schedule,
    period: TimeNs,
    faults: Option<&FaultPlan>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // EV304: the schedule must fit the period.
    if schedule.makespan() > period {
        out.push(Diagnostic {
            code: "EV304",
            severity: Severity::Error,
            anchor: Anchor::Model,
            message: format!(
                "makespan {} exceeds the period {}; activity spills into the next period",
                schedule.makespan(),
                period
            ),
        });
    }

    // EV301: branch-index gaps per condition variable.
    let mut branches: BTreeMap<OpId, Vec<usize>> = BTreeMap::new();
    for op in alg.ops() {
        if let Some(c) = alg.condition(op) {
            branches.entry(c.variable).or_default().push(c.branch);
        }
    }
    for (var, mut used) in branches {
        used.sort_unstable();
        used.dedup();
        let n = used.last().copied().unwrap_or(0) + 1;
        for k in 0..n {
            if !used.contains(&k) {
                out.push(Diagnostic {
                    code: "EV301",
                    severity: Severity::Warn,
                    anchor: op_anchor(alg, var),
                    message: format!(
                        "condition mapping is not exhaustive: branch {k} of {n} selects no operation"
                    ),
                });
            }
        }
    }

    // EV302: orphan completion events.
    for op in alg.ops() {
        if alg.kind(op) != OpKind::Actuator && alg.succs(op).is_empty() {
            out.push(Diagnostic {
                code: "EV302",
                severity: Severity::Warn,
                anchor: op_anchor(alg, op),
                message: "completion event drives nothing (orphan delay block)".to_string(),
            });
        }
    }

    // EV303 / EV305: timeout arming of the rendezvous barriers.
    let armed = faults.is_some_and(|p| !p.is_trivial());
    let drop_capable = faults
        .is_some_and(|p| plan_is_drop_capable(p, schedule.comms().len(), arch.num_processors()));
    for op in rendezvous_ops(alg, schedule) {
        if !armed {
            out.push(Diagnostic {
                code: "EV303",
                severity: Severity::Info,
                anchor: op_anchor(alg, op),
                message: "rendezvous synchronization has no timeout arm; a dropped frame would \
                          deadlock it (arm a fault plan to synthesize timeouts)"
                    .to_string(),
            });
        } else if drop_capable {
            out.push(Diagnostic {
                code: "EV305",
                severity: Severity::Warn,
                anchor: op_anchor(alg, op),
                message: "drop-capable fault plan: the rendezvous degrades through its timeout \
                          arm and is forced at the period boundary"
                    .to_string(),
            });
        }
    }

    out
}
