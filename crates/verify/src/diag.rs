//! The diagnostics engine shared by every verifier pass: stable rule
//! codes, severities, source-entity anchors, deterministic ordering, and
//! text + JSON renderers.

use std::fmt;

use crate::bounds::LatencyBoundReport;
use crate::envelope::EnvelopeReport;

/// Severity of a diagnostic. Orders `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A property worth knowing that requires no action.
    Info,
    /// A suspicious construction that degrades quality but not soundness.
    Warn,
    /// A violated property: the artifact must not be deployed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The source entity a diagnostic anchors to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// An operation of the algorithm graph.
    Op {
        /// The operation's index.
        index: usize,
        /// The operation's name.
        name: String,
    },
    /// A processor of the architecture graph.
    Proc {
        /// The processor's index.
        index: usize,
        /// The processor's name.
        name: String,
    },
    /// A communication medium of the architecture graph.
    Medium {
        /// The medium's index.
        index: usize,
        /// The medium's name.
        name: String,
    },
    /// A communication slot (index into the schedule's transfer list).
    Comm {
        /// The slot's index.
        index: usize,
    },
    /// The artifact as a whole.
    Model,
}

impl Anchor {
    /// Total order used for deterministic report ordering.
    fn order_key(&self) -> (u8, usize) {
        match self {
            Anchor::Model => (0, 0),
            Anchor::Op { index, .. } => (1, *index),
            Anchor::Proc { index, .. } => (2, *index),
            Anchor::Medium { index, .. } => (3, *index),
            Anchor::Comm { index } => (4, *index),
        }
    }
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Op { index, name } => write!(f, "op '{name}' (op{index})"),
            Anchor::Proc { index, name } => write!(f, "processor '{name}' (p{index})"),
            Anchor::Medium { index, name } => write!(f, "medium '{name}' (m{index})"),
            Anchor::Comm { index } => write!(f, "comm slot {index}"),
            Anchor::Model => write!(f, "model"),
        }
    }
}

/// One finding of the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`EV001`, ...). See DESIGN.md §10 for the registry.
    pub code: &'static str,
    /// Fixed severity of the rule.
    pub severity: Severity,
    /// The entity the finding anchors to.
    pub anchor: Anchor,
    /// Human-readable explanation.
    pub message: String,
}

/// The outcome of a verification run: deterministically ordered
/// diagnostics plus, when derived, the static latency bounds.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    diagnostics: Vec<Diagnostic>,
    /// Static `Ls`/`La` bounds, when the bounds pass ran.
    pub bounds: Option<LatencyBoundReport>,
    /// Fault-family completion envelopes, when the envelope pass ran.
    pub envelope: Option<EnvelopeReport>,
}

impl VerifyReport {
    /// Builds a report from raw findings, imposing the deterministic
    /// order: errors first, then by rule code, anchor, and message.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(b.code))
                .then(a.anchor.order_key().cmp(&b.anchor.order_key()))
                .then(a.message.cmp(&b.message))
        });
        VerifyReport {
            diagnostics,
            bounds: None,
            envelope: None,
        }
    }

    /// The ordered findings.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` iff no finding is an [`Severity::Error`].
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// `true` iff some finding carries rule code `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the report as readable text.
    pub fn render(&self) -> String {
        let mut s = String::from("## Static verification\n");
        s.push_str(&format!(
            "status: {} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        if self.diagnostics.is_empty() {
            s.push_str("findings: none\n");
        } else {
            s.push_str("findings:\n");
            for d in &self.diagnostics {
                s.push_str(&format!(
                    "  {} {:<5} {}: {}\n",
                    d.code,
                    d.severity.to_string(),
                    d.anchor,
                    d.message
                ));
            }
        }
        if let Some(b) = &self.bounds {
            s.push_str(&b.render());
        }
        if let Some(e) = &self.envelope {
            s.push_str(&e.render());
        }
        s
    }

    /// Renders the report as deterministic, hand-formatted JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"errors\": {},\n", self.count(Severity::Error)));
        s.push_str(&format!(
            "  \"warnings\": {},\n",
            self.count(Severity::Warn)
        ));
        s.push_str(&format!("  \"infos\": {},\n", self.count(Severity::Info)));
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"code\": \"{}\", \"severity\": \"{}\", \"anchor\": \"{}\", \"message\": \"{}\"}}",
                d.code,
                d.severity,
                escape(&d.anchor.to_string()),
                escape(&d.message)
            ));
        }
        if self.diagnostics.is_empty() {
            s.push(']');
        } else {
            s.push_str("\n  ]");
        }
        if let Some(b) = &self.bounds {
            s.push_str(",\n");
            s.push_str(&b.json_fragment());
        }
        if let Some(e) = &self.envelope {
            s.push_str(",\n");
            s.push_str(&e.json_fragment());
        }
        s.push_str("\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes and backslashes; names and
/// messages contain no control characters).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
