//! EV rule-code registry sync: every code the crate can emit has a
//! DESIGN.md §10 registry row, and every registry row names a code that
//! actually appears in the crate — both directions, so the table can
//! neither rot behind the implementation nor advertise codes that no
//! longer exist.

use std::collections::BTreeSet;

/// Every `ecl-verify` source file that can mention an EV code, embedded
/// at compile time so the test needs no filesystem conventions.
const SOURCES: &[(&str, &str)] = &[
    ("lib.rs", include_str!("../src/lib.rs")),
    ("bounds.rs", include_str!("../src/bounds.rs")),
    ("delay_lint.rs", include_str!("../src/delay_lint.rs")),
    ("diag.rs", include_str!("../src/diag.rs")),
    ("envelope.rs", include_str!("../src/envelope.rs")),
    ("executives.rs", include_str!("../src/executives.rs")),
    ("feasibility.rs", include_str!("../src/feasibility.rs")),
];

const DESIGN: &str = include_str!("../../../DESIGN.md");

/// Collects every `EV` + three-digit token in `text`.
fn ev_codes(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut codes = BTreeSet::new();
    for at in 0..bytes.len().saturating_sub(4) {
        if &bytes[at..at + 2] == b"EV"
            && bytes[at + 2..at + 5].iter().all(u8::is_ascii_digit)
            && (at == 0 || !bytes[at - 1].is_ascii_alphanumeric())
            && bytes.get(at + 5).is_none_or(|b| !b.is_ascii_alphanumeric())
        {
            codes.insert(String::from_utf8_lossy(&bytes[at..at + 5]).into_owned());
        }
    }
    codes
}

/// The registry rows: `| EVnnn | Sev | pass | meaning |` lines of the
/// DESIGN.md rule-code table.
fn registry_codes() -> BTreeSet<String> {
    DESIGN
        .lines()
        .filter(|line| line.starts_with("| EV"))
        .flat_map(|line| {
            ev_codes(line.split('|').nth(1).unwrap_or_default().trim())
                .into_iter()
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn every_emitted_code_has_a_registry_row() {
    let registry = registry_codes();
    assert!(
        !registry.is_empty(),
        "DESIGN.md rule-code registry table not found"
    );
    for (file, text) in SOURCES {
        for code in ev_codes(text) {
            assert!(
                registry.contains(&code),
                "{file} mentions {code} but DESIGN.md §10 has no registry row for it"
            );
        }
    }
}

#[test]
fn every_registry_row_names_a_live_code() {
    let mut crate_codes = BTreeSet::new();
    for (_, text) in SOURCES {
        crate_codes.extend(ev_codes(text));
    }
    assert!(!crate_codes.is_empty(), "no EV codes found in sources");
    for code in registry_codes() {
        assert!(
            crate_codes.contains(&code),
            "DESIGN.md §10 registers {code} but no ecl-verify source mentions it"
        );
    }
}

#[test]
fn envelope_codes_are_registered_and_emitted() {
    // The EV4xx block specifically: the envelope pass is new, so pin
    // that all five codes exist on both sides.
    let registry = registry_codes();
    let envelope = ev_codes(SOURCES.iter().find(|(f, _)| *f == "envelope.rs").unwrap().1);
    for code in ["EV401", "EV402", "EV403", "EV404", "EV405"] {
        assert!(registry.contains(code), "{code} missing from DESIGN.md §10");
        assert!(envelope.contains(code), "{code} missing from envelope.rs");
    }
}
