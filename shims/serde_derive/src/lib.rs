//! No-op derive macros backing the offline `serde` shim.
//!
//! The marker traits in `shims/serde` carry blanket impls, so the derives
//! here have nothing to emit: they accept the input (including `#[serde]`
//! helper attributes) and expand to an empty token stream.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
