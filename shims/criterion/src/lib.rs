//! Offline mini benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be compiled. This shim keeps `benches/*.rs` source-compatible
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) and measures with
//! `std::time::Instant`: a short warmup, an iteration count calibrated to
//! the target measurement time, then a handful of samples reported as
//! min/median/mean per iteration.
//!
//! Environment knobs:
//!
//! - `ECL_BENCH_MS` — per-benchmark measurement budget in milliseconds
//!   (default 100; set small, e.g. `1`, for smoke runs).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, matching
/// `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for groups whose name already identifies the
    /// benchmark.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    budget: Duration,
    /// Mean ns/iter from the most recent `iter` call.
    mean_ns: f64,
    min_ns: f64,
    median_ns: f64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            mean_ns: 0.0,
            min_ns: 0.0,
            median_ns: 0.0,
        }
    }

    /// Times repeated runs of `routine`.
    ///
    /// Warmup runs for a quarter of the budget, the iteration count is
    /// calibrated from it, and the remaining budget is split into up to 8
    /// timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup_end = Instant::now() + self.budget / 4;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            warm_iters += 1;
            if Instant::now() >= warmup_end {
                break;
            }
        }
        let warm_elapsed = warm_start.elapsed();
        let est_ns = (warm_elapsed.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let sample_budget_ns = (self.budget.as_nanos() as f64 * 0.75 / 8.0).max(1.0);
        let iters_per_sample = ((sample_budget_ns / est_ns) as u64).max(1);

        let mut samples = Vec::with_capacity(8);
        for _ in 0..8 {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            samples.push(per_iter);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.min_ns = samples[0];
        self.median_ns = samples[samples.len() / 2];
        self.mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The harness: collects and prints one result line per benchmark.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("ECL_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(100)
            .max(1);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        println!(
            "{name:<40} time: [{} {} {}]",
            format_ns(b.min_ns),
            format_ns(b.median_ns),
            format_ns(b.mean_ns),
        );
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with `group/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` with the given id and a reference to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Runs `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (accepted for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}
