//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, and nothing in the tree actually serializes data through serde:
//! the `#[derive(Serialize, Deserialize)]` attributes on schedule types
//! exist so downstream consumers *could* wire up serialization, and the
//! only test touching them checks that the derives compile. This shim
//! keeps those derives compiling with zero behaviour: the traits are
//! empty markers with blanket impls, and the derive macros (behind the
//! `derive` feature, mirroring real serde) expand to nothing.
//!
//! If the workspace ever needs real serialization, delete `shims/serde`
//! and `shims/serde_derive` and point `[workspace.dependencies] serde`
//! back at the registry; no call sites need to change.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for every
/// type so `T: Serialize` bounds and derives are satisfied trivially.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for
/// every type so `T: Deserialize<'de>` bounds and derives are satisfied
/// trivially.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
