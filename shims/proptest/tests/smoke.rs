//! Behavioural checks of the mini runner itself.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(37))]

    #[test]
    fn runner_executes_exactly_configured_cases(x in 0i64..100) {
        CASES_RUN.fetch_add(1, Ordering::SeqCst);
        prop_assert!((0..100).contains(&x));
    }
}

#[test]
fn configured_case_count_is_honoured() {
    runner_executes_exactly_configured_cases();
    assert_eq!(CASES_RUN.load(Ordering::SeqCst), 37);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ranges_stay_in_bounds(
        a in -5i32..7,
        b in 0usize..3,
        f in -2.5f64..2.5,
        v in proptest::collection::vec(0u64..10, 2..6),
    ) {
        prop_assert!((-5..7).contains(&a));
        prop_assert!(b < 3);
        prop_assert!((-2.5..2.5).contains(&f));
        prop_assert!((2..6).contains(&v.len()));
        prop_assert!(v.iter().all(|&x| x < 10));
    }

    #[test]
    fn assume_skips_rejected_cases(x in 0i64..10) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }

    #[test]
    fn oneof_map_flatmap_compose(
        n in prop_oneof![Just(1usize), Just(2usize), (3usize..6).prop_map(|x| x)],
        pair in (1i64..4).prop_flat_map(|n| (Just(n), n..8)),
    ) {
        prop_assert!((1..6).contains(&n));
        prop_assert!(pair.1 >= pair.0);
    }
}

#[test]
fn sampling_is_deterministic_per_test_name() {
    let mut a = proptest::test_runner::TestRng::from_name("some::test");
    let mut b = proptest::test_runner::TestRng::from_name("some::test");
    let mut c = proptest::test_runner::TestRng::from_name("other::test");
    let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
    let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
    let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
    assert_eq!(sa, sb);
    assert_ne!(sa, sc);
}

#[test]
fn failing_property_panics_with_case_number() {
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[allow(dead_code)]
        fn always_fails(x in 0i64..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }
    let err = std::panic::catch_unwind(always_fails).expect_err("must fail");
    let msg = err.downcast_ref::<String>().expect("string panic");
    assert!(msg.contains("case 0"), "got: {msg}");
}
