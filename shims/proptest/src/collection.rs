//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification for [`vec`]: a fixed length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Samples `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
