//! Offline mini property-testing runner, API-compatible with the subset of
//! `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be compiled. This shim keeps every existing property test
//! source-compatible: the [`proptest!`], [`prop_compose!`], [`prop_oneof!`]
//! macros, the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the case number and the
//!   deterministic per-test seed; re-running reproduces it exactly.
//! - **Deterministic sampling.** Each test derives its RNG seed from its
//!   fully-qualified name (FNV-1a), so runs are reproducible without
//!   `proptest-regressions` files (which are ignored).
//! - **Uniform distributions only.** Ranges sample uniformly; there is no
//!   bias toward boundary values.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};
}

/// Defines property tests over sampled inputs.
///
/// Supports the standard grammar: an optional inner
/// `#![proptest_config(...)]` attribute followed by `fn` items whose
/// parameters are `pattern in strategy` pairs. Each generated test samples
/// `config.cases` inputs and runs the body; `prop_assert*` failures panic
/// with the case index.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {case}: {msg}");
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Defines a named strategy-returning function from sampled parts.
///
/// `prop_compose! { fn name()(x in sx, y in sy) -> T { expr } }` expands to
/// `fn name() -> impl Strategy<Value = T>`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::func(move |rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// `assert!` for property bodies: fails the current case instead of
/// panicking directly, so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{left:?}` == `{right:?}`"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{left:?}` == `{right:?}`: {}", format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case (skips it) when a sampled input is outside the
/// property's precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
