//! Runner plumbing: configuration, deterministic RNG, and case outcomes.

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` sampled inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs; skip the case.
    Reject(&'static str),
}

/// Deterministic SplitMix64 generator.
///
/// Every property test seeds one of these from its fully-qualified name,
/// so failures reproduce exactly on re-run without regression files.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
