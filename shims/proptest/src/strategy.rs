//! The [`Strategy`] trait and the built-in strategies/combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for sampling values of one type from a [`TestRng`].
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Samples a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy built directly from a sampling closure; returned by
/// [`func`] and used by `prop_compose!`.
pub struct FnStrategy<F> {
    f: F,
}

impl<T, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Wraps a sampling closure as a [`Strategy`].
pub fn func<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy { f }
}

/// Boxes a strategy for heterogeneous collections (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice among boxed strategies of one value type; built by
/// `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = rng.next_f64();
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}
